package algebra

import (
	"container/heap"
	"slices"

	"nalquery/internal/value"
)

// Native slot-row execution of the partitioned operator family: the Grace
// hash join, the order-preserving hash join of Claussen et al. [6], and
// the six unordered operators (⋈ᵁ, ⋉ᵁ, ▷ᵁ, ⟕ᵁ, unary/binary Γᵁ). These
// are partition-everything pipeline breakers: both inputs materialize as
// rows, partition tables are keyed by allocation-free composite
// value.HashKeys (rowKey), and output streams from the partition structure
// — one ConcatRows slice per emitted tuple instead of the map rebuilds the
// conversion shim used to pay.
//
// Every iterator here defers its build to the first Next() call and drains
// the probe (left) side first, so an empty left input never evaluates the
// right subtree — the short-circuit of the definitional Eval.
//
// The unordered family and the Grace join emit output in the canonical
// value.LessKey partition order; their Evals partition with the same key
// function (tupleHashKey/rowKey agree on logical tuples) and the same
// order, so both engines produce identical sequences — the property
// partitioned_rows_test.go differential-tests.

// partitionRowsSorted buckets rows on the key slots and returns the keys
// in canonical LessKey order. keyHint pre-sizes the partition table and key
// list — the cost model's distinct-key estimate where the caller has one,
// the input size otherwise.
func partitionRowsSorted(rows []value.Row, slots []int, keyHint int) ([]value.HashKey, map[value.HashKey][]value.Row) {
	buckets := make(map[value.HashKey][]value.Row, keyHint)
	keys := make([]value.HashKey, 0, keyHint)
	for _, r := range rows {
		k := rowKey(r, slots)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], r)
	}
	slices.SortFunc(keys, value.CmpKey)
	return keys, buckets
}

// hashRowBuckets is the build side: HashKey buckets preserving input
// order, no key list.
func hashRowBuckets(rows []value.Row, slots []int) map[value.HashKey][]value.Row {
	m := make(map[value.HashKey][]value.Row, len(rows))
	for _, r := range rows {
		k := rowKey(r, slots)
		m[k] = append(m[k], r)
	}
	return m
}

// openRowPartitionedJoin builds the native iterator shared by GraceJoin
// (inner mode) and the unordered join family: both inputs partitioned on
// the key columns, partitions joined in LessKey order. nil falls back to
// the conversion shim.
func openRowPartitionedJoin(l, r Op, lAttrs, rAttrs []string, residual Expr,
	sc Schema, ctx *Ctx, env value.Tuple, mode joinMode, g string, def SeqFunc) RowIter {
	lsc, lok := ResolveSchema(l)
	rsc, rok := ResolveSchema(r)
	if !lok || !rok {
		return nil
	}
	// The concatenated layout is needed for the output of ⋈/⟕ modes and to
	// compile a residual; ⋉/▷ without residual emit left rows only and
	// tolerate colliding attribute names across the inputs.
	var catLay *value.Layout
	if mode == joinModeInner || mode == joinModeOuter || residual != nil {
		var cok bool
		catLay, cok = lsc.Lay.Concat(rsc.Lay)
		if !cok {
			return nil
		}
	}
	lSlots, ok1 := slotsOf(lsc.Lay, lAttrs)
	rSlots, ok2 := slotsOf(rsc.Lay, rAttrs)
	if !ok1 || !ok2 {
		return nil
	}
	gSlot := -1
	if mode == joinModeOuter {
		s, ok := catLay.Slot(g)
		if !ok {
			return nil // G outside the schema: map semantics needed
		}
		gSlot = s
	}
	it := &rowPartJoinIter{ctx: ctx, env: env, mode: mode, catLay: catLay,
		gSlot: gSlot, def: def, padFrom: lsc.Lay.Width()}
	switch mode {
	case joinModeSemi, joinModeAnti:
		it.lay = lsc.Lay
	default:
		it.lay = catLay
	}
	if residual != nil {
		it.residual = compileExpr(residual, Schema{Lay: catLay}, env)
	}
	it.build = func() bool {
		left := drainRows(ctx, TripPartition, openRowsSchema(l, lsc, ctx, env))
		if len(left) == 0 {
			return false
		}
		it.keys, it.lParts = partitionRowsSorted(left, lSlots, len(left))
		right := drainRows(ctx, TripPartition, openRowsSchema(r, rsc, ctx, env))
		it.rParts = hashRowBuckets(right, rSlots)
		return true
	}
	return it
}

// rowPartJoinIter streams one partitioned join: partitions advance in key
// order, left tuples in input order within a partition, right partners in
// input order within a left tuple.
type rowPartJoinIter struct {
	ctx      *Ctx
	env      value.Tuple
	mode     joinMode
	lay      *value.Layout // output layout (concat, or left for semi/anti)
	catLay   *value.Layout // concat layout the residual compiles against
	residual RowExpr
	gSlot    int // ⟕ᵁ: slot receiving the default on padding
	padFrom  int // ⟕ᵁ: first right slot in the concatenated layout
	def      SeqFunc

	build         func() bool
	started, done bool
	keys          []value.HashKey
	lParts        map[value.HashKey][]value.Row
	rParts        map[value.HashKey][]value.Row
	ki, li, ri    int
}

func (p *rowPartJoinIter) Next() (value.Row, bool) {
	if !p.started {
		p.started = true
		if !p.build() {
			p.done = true
		}
	}
	// Emission from the partition structure streams; fault-injection
	// boundary only.
	p.ctx.Fault(TripProbe)
	for !p.done {
		if p.ki >= len(p.keys) {
			p.done = true
			break
		}
		lp := p.lParts[p.keys[p.ki]]
		rp := p.rParts[p.keys[p.ki]]
		if p.li >= len(lp) {
			p.ki++
			p.li, p.ri = 0, 0
			continue
		}
		switch p.mode {
		case joinModeInner:
			if len(rp) == 0 {
				p.ki++
				p.li, p.ri = 0, 0
				continue
			}
			if p.ri >= len(rp) {
				p.li++
				p.ri = 0
				continue
			}
			out := value.ConcatRows(p.lay, lp[p.li], rp[p.ri])
			p.ri++
			if p.residual != nil && !value.EffectiveBool(p.residual(p.ctx, out)) {
				continue
			}
			return out, true

		case joinModeSemi:
			if len(rp) == 0 {
				p.ki++
				p.li = 0
				continue
			}
			lt := lp[p.li]
			p.li++
			if p.residual == nil || p.anyResidual(lt, rp) {
				return lt, true
			}

		case joinModeAnti:
			lt := lp[p.li]
			p.li++
			matched := len(rp) > 0
			if p.residual != nil {
				matched = p.anyResidual(lt, rp)
			}
			if !matched {
				return lt, true
			}

		case joinModeOuter:
			if len(rp) == 0 {
				lt := lp[p.li]
				p.li++
				vals := make([]value.Value, p.lay.Width())
				copy(vals, lt.Vals)
				for i := p.padFrom; i < len(vals); i++ {
					vals[i] = value.Null{}
				}
				vals[p.gSlot] = p.def.Apply(p.ctx, p.env, nil)
				return value.Row{Lay: p.lay, Vals: vals}, true
			}
			if p.ri >= len(rp) {
				p.li++
				p.ri = 0
				continue
			}
			out := value.ConcatRows(p.lay, lp[p.li], rp[p.ri])
			p.ri++
			return out, true
		}
	}
	return value.Row{}, false
}

func (p *rowPartJoinIter) anyResidual(lt value.Row, rp []value.Row) bool {
	for _, rt := range rp {
		if value.EffectiveBool(p.residual(p.ctx, value.ConcatRows(p.catLay, lt, rt))) {
			return true
		}
	}
	return false
}

func (p *rowPartJoinIter) Close() { p.done = true }

// ---- order-preserving hash join (Claussen et al.) ----

// rowOPTagged is one joined output row tagged with the probe ordinal it
// belongs to, plus the running emission index keeping partners of one
// probe row ordered through the merge.
type rowOPTagged struct {
	seq, minor int
	r          value.Row
}

// rowOPMergeHeap is the P-way merge heap over the per-partition output
// streams, compared by the head element's (seq, minor).
type rowOPMergeHeap struct {
	streams [][]rowOPTagged
}

func (h *rowOPMergeHeap) Len() int { return len(h.streams) }
func (h *rowOPMergeHeap) Less(i, k int) bool {
	a, b := h.streams[i][0], h.streams[k][0]
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.minor < b.minor
}
func (h *rowOPMergeHeap) Swap(i, k int) { h.streams[i], h.streams[k] = h.streams[k], h.streams[i] }
func (h *rowOPMergeHeap) Push(x any)    { h.streams = append(h.streams, x.([]rowOPTagged)) }
func (h *rowOPMergeHeap) Pop() any {
	n := len(h.streams)
	s := h.streams[n-1]
	h.streams = h.streams[:n-1]
	return s
}

// openRowOPHashJoin builds the native Claussen order-preserving hash join:
// probe side tagged with ordinals, both sides partitioned by the key's
// hash, partition pairs joined in probe order, and the global probe order
// restored by a lazy P-way ordinal merge — O(N log P) instead of the full
// sort of the Grace+Sort strategy.
func openRowOPHashJoin(j OPHashJoin, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	lsc, lok := ResolveSchema(j.L)
	rsc, rok := ResolveSchema(j.R)
	if !lok || !rok {
		return nil
	}
	catLay, cok := lsc.Lay.Concat(rsc.Lay)
	if !cok {
		return nil
	}
	lSlots, ok1 := slotsOf(lsc.Lay, j.LAttrs)
	rSlots, ok2 := slotsOf(rsc.Lay, j.RAttrs)
	if !ok1 || !ok2 {
		return nil
	}
	var residual RowExpr
	if j.Residual != nil {
		residual = compileExpr(j.Residual, Schema{Lay: catLay}, env)
	}
	it := &rowOPHashJoinIter{ctx: ctx}
	it.build = func() {
		left := drainRows(ctx, TripPartition, openRowsSchema(j.L, lsc, ctx, env))
		if len(left) == 0 {
			return
		}
		right := drainRows(ctx, TripPartition, openRowsSchema(j.R, rsc, ctx, env))
		p := j.partitionCount(len(right))

		type tagged struct {
			seq int
			r   value.Row
		}
		lParts := make([][]tagged, p)
		for i, lt := range left {
			pi := int(rowKey(lt, lSlots).Hash() % uint64(p))
			lParts[pi] = append(lParts[pi], tagged{seq: i, r: lt})
		}
		rParts := make([][]value.Row, p)
		for _, rt := range right {
			pi := int(rowKey(rt, rSlots).Hash() % uint64(p))
			rParts[pi] = append(rParts[pi], rt)
		}

		var streams [][]rowOPTagged
		for pi := 0; pi < p; pi++ {
			if len(lParts[pi]) == 0 || len(rParts[pi]) == 0 {
				continue
			}
			buckets := hashRowBuckets(rParts[pi], rSlots)
			var out []rowOPTagged
			for _, lt := range lParts[pi] {
				minor := 0
				for _, rt := range buckets[rowKey(lt.r, lSlots)] {
					cat := value.ConcatRows(catLay, lt.r, rt)
					if residual != nil && !value.EffectiveBool(residual(ctx, cat)) {
						continue
					}
					// The whole join output materializes before the ordinal
					// merge — charge it like any other partition build.
					ctx.ChargeRow(TripPartition, cat)
					out = append(out, rowOPTagged{seq: lt.seq, minor: minor, r: cat})
					minor++
				}
			}
			if len(out) > 0 {
				streams = append(streams, out)
			}
		}
		if len(streams) > 0 {
			it.h = &rowOPMergeHeap{streams: streams}
			heap.Init(it.h)
		}
	}
	return it
}

type rowOPHashJoinIter struct {
	build   func()
	started bool
	h       *rowOPMergeHeap
	ctx     *Ctx
}

func (j *rowOPHashJoinIter) Next() (value.Row, bool) {
	if !j.started {
		j.started = true
		j.build()
	}
	j.ctx.Fault(TripProbe)
	if j.h == nil || j.h.Len() == 0 {
		return value.Row{}, false
	}
	s := j.h.streams[0]
	r := s[0].r
	if len(s) > 1 {
		j.h.streams[0] = s[1:]
		heap.Fix(j.h, 0)
	} else {
		heap.Pop(j.h)
	}
	return r, true
}

func (j *rowOPHashJoinIter) Close() { j.h = nil; j.started = true }

// ---- unordered grouping ----

// openRowUnorderedGroupUnary builds the native Γᵁ: one output row per
// distinct key, keys in LessKey order, group values computed by the
// slot-compiled applier.
func openRowUnorderedGroupUnary(g UnorderedGroupUnary, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	insc, ok := ResolveSchema(g.In)
	if !ok {
		return nil
	}
	by, ok := slotsOf(insc.Lay, g.By)
	if !ok {
		return nil
	}
	gSlot, _ := sc.Lay.Slot(g.G)
	outBy, _ := slotsOf(sc.Lay, g.By)
	it := &rowUnorderedGroupUnaryIter{lay: sc.Lay, gSlot: gSlot, by: by, outBy: outBy,
		theta: g.Theta, apply: groupApplier(g.F, insc.Lay, env), ctx: ctx, env: env}
	it.build = func() {
		it.rows = drainRows(ctx, TripPartition, openRowsSchema(g.In, insc, ctx, env))
		it.keys, it.buckets = partitionRowsSorted(it.rows, by, ctx.cardHint(g, len(it.rows)))
	}
	return it
}

type rowUnorderedGroupUnaryIter struct {
	lay       *value.Layout
	gSlot     int
	by, outBy []int
	theta     value.CmpOp
	apply     func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value
	ctx       *Ctx
	env       value.Tuple

	build   func()
	started bool
	rows    []value.Row
	keys    []value.HashKey
	buckets map[value.HashKey][]value.Row
	pos     int
}

func (g *rowUnorderedGroupUnaryIter) Next() (value.Row, bool) {
	if !g.started {
		g.started = true
		g.build()
	}
	if g.pos >= len(g.keys) {
		return value.Row{}, false
	}
	b := g.buckets[g.keys[g.pos]]
	g.pos++
	rep := b[0]
	grp := b
	if g.theta != value.CmpEq {
		// General θ: the group is every input row whose by-attributes stand
		// in relation θ to the key — same scan as the definitional Eval.
		grp = nil
		for _, r := range g.rows {
			if thetaMatchRows(rep, r, g.by, g.by, g.theta) {
				grp = append(grp, r)
			}
		}
	}
	vals := make([]value.Value, g.lay.Width())
	for i, s := range g.by {
		vals[g.outBy[i]] = rep.Vals[s]
	}
	vals[g.gSlot] = g.apply(g.ctx, g.env, grp)
	return value.Row{Lay: g.lay, Vals: vals}, true
}

func (g *rowUnorderedGroupUnaryIter) Close() { g.pos = len(g.keys); g.started = true }

// openRowUnorderedGroupBinary builds the native unordered nest-join: left
// tuples in LessKey partition order, each extended by f over its right
// group (cached per distinct key on the hash path, like the ordered
// operator).
func openRowUnorderedGroupBinary(g UnorderedGroupBinary, sc Schema, ctx *Ctx, env value.Tuple) RowIter {
	lsc, lok := ResolveSchema(g.L)
	rsc, rok := ResolveSchema(g.R)
	if !lok || !rok {
		return nil
	}
	lSlots, ok1 := slotsOf(lsc.Lay, g.LAttrs)
	rSlots, ok2 := slotsOf(rsc.Lay, g.RAttrs)
	if !ok1 || !ok2 {
		return nil
	}
	gSlot, _ := sc.Lay.Slot(g.G)
	it := &rowUnorderedGroupBinaryIter{lay: sc.Lay, gSlot: gSlot,
		lSlots: lSlots, rSlots: rSlots, theta: g.Theta,
		apply: groupApplier(g.F, rsc.Lay, env), ctx: ctx, env: env}
	it.build = func() bool {
		left := drainRows(ctx, TripPartition, openRowsSchema(g.L, lsc, ctx, env))
		if len(left) == 0 {
			return false
		}
		it.keys, it.lParts = partitionRowsSorted(left, lSlots, len(left))
		right := drainRows(ctx, TripPartition, openRowsSchema(g.R, rsc, ctx, env))
		if g.Theta == value.CmpEq {
			it.rHash = hashRowBuckets(right, rSlots)
			it.applied = make(map[value.HashKey]value.Value, len(it.rHash))
		} else {
			it.scanRows = right
		}
		return true
	}
	return it
}

type rowUnorderedGroupBinaryIter struct {
	lay            *value.Layout
	gSlot          int
	lSlots, rSlots []int
	theta          value.CmpOp
	apply          func(ctx *Ctx, env value.Tuple, rows []value.Row) value.Value
	ctx            *Ctx
	env            value.Tuple

	build         func() bool
	started, done bool
	keys          []value.HashKey
	lParts        map[value.HashKey][]value.Row
	rHash         map[value.HashKey][]value.Row
	applied       map[value.HashKey]value.Value
	scanRows      []value.Row
	ki, li        int
}

func (g *rowUnorderedGroupBinaryIter) Next() (value.Row, bool) {
	if !g.started {
		g.started = true
		if !g.build() {
			g.done = true
		}
	}
	for !g.done {
		if g.ki >= len(g.keys) {
			g.done = true
			break
		}
		key := g.keys[g.ki]
		lp := g.lParts[key]
		if g.li >= len(lp) {
			g.ki++
			g.li = 0
			continue
		}
		lt := lp[g.li]
		g.li++
		var gv value.Value
		if g.rHash != nil {
			// Every left tuple of this partition shares the key, so the
			// partition key doubles as the right-bucket lookup.
			var cached bool
			if gv, cached = g.applied[key]; !cached {
				gv = g.apply(g.ctx, g.env, g.rHash[key])
				g.applied[key] = gv
			}
		} else {
			var grp []value.Row
			for _, r := range g.scanRows {
				if thetaMatchRows(lt, r, g.lSlots, g.rSlots, g.theta) {
					grp = append(grp, r)
				}
			}
			gv = g.apply(g.ctx, g.env, grp)
		}
		vals := make([]value.Value, g.lay.Width())
		copy(vals, lt.Vals)
		vals[g.gSlot] = gv
		return value.Row{Lay: g.lay, Vals: vals}, true
	}
	return value.Row{}, false
}

func (g *rowUnorderedGroupBinaryIter) Close() { g.done = true }
