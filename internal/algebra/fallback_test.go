package algebra

import (
	"testing"

	"nalquery/internal/value"
)

// The join family falls back to nested-loop evaluation when no equality
// pair can be extracted from the predicate. These tests pin the fallback
// paths and their order preservation.

func ltPred() Expr {
	return CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpLt}
}

func TestJoinNonEquiFallback(t *testing.T) {
	out := eval(t, Join{L: relR1(), R: relR2(), Pred: ltPred()})
	// A1=1 joins A2=2 rows (2), A1=2/3 none... A1 < A2: A1=1 with A2=2 (two
	// rows); others none.
	if len(out) != 2 {
		t.Fatalf("non-equi join size: %d (%s)", len(out), out)
	}
	ref := eval(t, Select{In: Cross{L: relR1(), R: relR2()}, Pred: ltPred()})
	if !value.TupleSeqEqual(out, ref) {
		t.Fatalf("non-equi join ≠ σ(×)")
	}
}

func TestSemiAntiNonEquiFallback(t *testing.T) {
	semi := eval(t, SemiJoin{L: relR1(), R: relR2(), Pred: ltPred()})
	if len(semi) != 1 || !value.DeepEqual(semi[0]["A1"], value.Int(1)) {
		t.Fatalf("non-equi semijoin: %s", semi)
	}
	anti := eval(t, AntiJoin{L: relR1(), R: relR2(), Pred: ltPred()})
	if len(anti) != 2 {
		t.Fatalf("non-equi antijoin: %s", anti)
	}
}

func TestOuterJoinNonEquiFallback(t *testing.T) {
	grouped := GroupUnary{In: relR2(), G: "g", By: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
	oj := OuterJoin{L: relR1(), R: grouped, Pred: ltPred(), G: "g", Default: SFCount{}}
	out := eval(t, oj)
	// Grouped keys are {1, 2}. A1=1 matches key 2 (1 row); A1=2 and A1=3
	// match nothing and are ⊥-padded. Total 3.
	if len(out) != 3 {
		t.Fatalf("non-equi outer join size: %d (%s)", len(out), out)
	}
	if !value.DeepEqual(out[len(out)-1]["g"], value.Int(0)) {
		t.Fatalf("padded default: %s", out)
	}
}

func TestJoinIteratorNonEquiFallback(t *testing.T) {
	op := Join{L: relR1(), R: relR2(), Pred: ltPred()}
	a := op.Eval(NewCtx(nil), nil)
	b := RunIter(op, NewCtx(nil), nil)
	if !value.TupleSeqEqual(a, b) {
		t.Fatalf("iterator non-equi fallback differs")
	}
}

// TestXiSideEffectsOnceUnderIterator: pipeline breakers fall back to the
// materialized evaluator inside the iterator tree; Ξ output must still be
// emitted exactly once.
func TestXiSideEffectsOnceUnderIterator(t *testing.T) {
	xi := XiGroup{
		In: relR2(),
		By: []string{"A2"},
		S1: []Command{LitCmd("[")},
		S2: []Command{ExprCmd(Var{Name: "B"})},
		S3: []Command{LitCmd("]")},
	}
	ctx := NewCtx(nil)
	DrainIter(xi, ctx, nil)
	if ctx.OutString() != "[23][45]" {
		t.Fatalf("group Ξ under iterator: %q", ctx.OutString())
	}
	// Simple Ξ streams natively.
	xs := XiSimple{In: relR1(), Cmds: []Command{ExprCmd(Var{Name: "A1"})}}
	ctx2 := NewCtx(nil)
	DrainIter(xs, ctx2, nil)
	if ctx2.OutString() != "123" {
		t.Fatalf("simple Ξ under iterator: %q", ctx2.OutString())
	}
}

// TestResidualOnHashPath: an equality pair with an extra non-equality
// conjunct uses the hash path plus residual filtering.
func TestResidualOnHashPath(t *testing.T) {
	pred := AndExpr{
		L: eqCmp("A1", "A2"),
		R: CmpExpr{L: Var{Name: "B"}, R: ConstVal{V: value.Int(3)}, Op: value.CmpGe},
	}
	out := eval(t, Join{L: relR1(), R: relR2(), Pred: pred})
	ref := eval(t, Select{In: Cross{L: relR1(), R: relR2()}, Pred: pred})
	if !value.TupleSeqEqual(out, ref) {
		t.Fatalf("hash+residual differs from σ(×)")
	}
	if len(out) != 3 {
		t.Fatalf("size: %d", len(out))
	}
}

// TestCorrelatedNestedJoinEnv: a join's right side may reference free
// variables from an enclosing nested evaluation; prepareJoin must evaluate
// it under that environment.
func TestCorrelatedNestedJoinEnv(t *testing.T) {
	inner := Join{
		L:    relR1(),
		R:    Select{In: relR2(), Pred: CmpExpr{L: Var{Name: "B"}, R: Var{Name: "outer"}, Op: value.CmpLe}},
		Pred: eqCmp("A1", "A2"),
	}
	outerPlan := Map{
		In:   constOp{ts: value.TupleSeq{{"outer": value.Int(3)}}, attrs: []string{"outer"}},
		Attr: "n",
		E:    NestedApply{F: SFCount{}, Plan: inner},
	}
	out := eval(t, outerPlan)
	// R2 rows with B ≤ 3: [1,2],[1,3]; joined with A1: both match A1=1 → 2.
	if !value.DeepEqual(out[0]["n"], value.Int(2)) {
		t.Fatalf("correlated join under env: %s", out)
	}
}
