package algebra

import (
	"fmt"
	"io"
	"strings"

	"nalquery/internal/dom"
	"nalquery/internal/value"
)

// Command is one element of a Ξ command list: either a literal string copied
// to the output stream or an expression whose value is printed.
type Command struct {
	Lit   string
	E     Expr
	IsLit bool
}

// LitCmd builds a literal command.
func LitCmd(s string) Command { return Command{Lit: s, IsLit: true} }

// ExprCmd builds an expression command.
func ExprCmd(e Expr) Command { return Command{E: e} }

func (c Command) String() string {
	if c.IsLit {
		return fmt.Sprintf("%q", c.Lit)
	}
	return c.E.String()
}

func cmdStrings(cs []Command) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

func execCommands(ctx *Ctx, env value.Tuple, t value.Tuple, cs []Command) {
	for _, c := range cs {
		if c.IsLit {
			ctx.EmitLit(c.Lit)
			continue
		}
		ctx.EmitValue(c.E.Eval(ctx, env.Concat(t)))
	}
}

// WriteValue streams the printed form of v into out — PrintValue without
// the intermediate per-value string. On the per-tuple Ξ path this removes
// the serialization builder every printed element node used to allocate
// and grow.
func WriteValue(out StringWriter, v value.Value) {
	switch w := v.(type) {
	case nil, value.Null:
	case value.NodeVal:
		if w.Node == nil {
			return
		}
		switch w.Node.Kind {
		case dom.KindAttribute, dom.KindText:
			out.WriteString(w.Node.Data)
		default:
			if iow, ok := out.(io.Writer); ok {
				_ = dom.WriteXML(iow, w.Node)
			} else {
				out.WriteString(dom.XMLString(w.Node))
			}
		}
	case value.Seq:
		for _, item := range w {
			WriteValue(out, item)
		}
	case value.TupleSeq:
		for _, t := range w {
			t.EachValue(func(v value.Value) { WriteValue(out, v) })
		}
	case value.RowSeq:
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(v value.Value) { WriteValue(out, v) })
		}
	case value.Str:
		out.WriteString(dom.EscapeText(string(w)))
	default:
		out.WriteString(v.String())
	}
}

// PrintValue renders a value for result construction, following the paper's
// simplified Ξ semantics: strings are copied, element nodes are serialized,
// attribute and text nodes contribute their data, sequences concatenate
// their items, and tuple sequences concatenate the values of their tuples.
func PrintValue(v value.Value) string {
	switch w := v.(type) {
	case nil, value.Null:
		return ""
	case value.NodeVal:
		if w.Node == nil {
			return ""
		}
		switch w.Node.Kind {
		case dom.KindAttribute, dom.KindText:
			return w.Node.Data
		default:
			return dom.XMLString(w.Node)
		}
	case value.Seq:
		var sb strings.Builder
		for _, item := range w {
			sb.WriteString(PrintValue(item))
		}
		return sb.String()
	case value.TupleSeq:
		var sb strings.Builder
		for _, t := range w {
			t.EachValue(func(v value.Value) { sb.WriteString(PrintValue(v)) })
		}
		return sb.String()
	case value.RowSeq:
		var sb strings.Builder
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(v value.Value) { sb.WriteString(PrintValue(v)) })
		}
		return sb.String()
	case value.Str:
		return dom.EscapeText(string(w))
	default:
		return v.String()
	}
}

// XiSimple is the simple form of the Ξ result-construction operator: it
// executes its command list for every input tuple as a side effect on the
// output stream and returns its input (Sec. 2).
type XiSimple struct {
	In   Op
	Cmds []Command
}

// Eval implements Op.
func (x XiSimple) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := x.In.Eval(ctx, env)
	for _, t := range in {
		execCommands(ctx, env, t, x.Cmds)
	}
	return in
}

func (x XiSimple) String() string { return fmt.Sprintf("Ξ[%s]", cmdStrings(x.Cmds)) }

// Children implements Op.
func (x XiSimple) Children() []Op { return []Op{x.In} }

// Exprs implements Op.
func (x XiSimple) Exprs() []Expr {
	var out []Expr
	for _, c := range x.Cmds {
		if !c.IsLit {
			out = append(out, c.E)
		}
	}
	return out
}

// Attrs implements Op.
func (x XiSimple) Attrs() ([]string, bool) { return x.In.Attrs() }

// XiGroup is the group-detecting form s1Ξs3A;s2 (Sec. 2): the input is
// grouped on A (order-preserving first-occurrence groups, as produced by
// Γg;=A;id); for every group, S1 runs on the group's first tuple, S2 on
// every tuple of the group, and S3 on the last tuple. It saves materializing
// a sequence-valued group attribute.
type XiGroup struct {
	In         Op
	By         []string
	S1, S2, S3 []Command
}

// Eval implements Op.
func (x XiGroup) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := x.In.Eval(ctx, env)
	ctx.ChargeTuples(TripGroup, in)
	keys, buckets := partition(in, x.By)
	for _, k := range keys {
		grp := buckets[k]
		execCommands(ctx, env, grp[0], x.S1)
		for _, t := range grp {
			execCommands(ctx, env, t, x.S2)
		}
		execCommands(ctx, env, grp[len(grp)-1], x.S3)
	}
	return in
}

func (x XiGroup) String() string {
	return fmt.Sprintf("Ξ[%s | %s ; %s | %s]", cmdStrings(x.S1), strings.Join(x.By, ","),
		cmdStrings(x.S2), cmdStrings(x.S3))
}

// Children implements Op.
func (x XiGroup) Children() []Op { return []Op{x.In} }

// Exprs implements Op.
func (x XiGroup) Exprs() []Expr {
	var out []Expr
	for _, cs := range [][]Command{x.S1, x.S2, x.S3} {
		for _, c := range cs {
			if !c.IsLit {
				out = append(out, c.E)
			}
		}
	}
	return out
}

// Attrs implements Op.
func (x XiGroup) Attrs() ([]string, bool) { return x.In.Attrs() }

// XiGroupStream is the paper's literal implementation of the
// group-detecting Ξ (Sec. 2): "a group spans consecutive tuples in the
// input sequence and group boundaries are detected by a change of any of
// the attribute values in A. ... This condition can be met by a stable(!)
// sort on A." It requires contiguous groups (produce them with Sort{By: A}
// upstream) and streams: S1 fires when a boundary opens, S2 per tuple, S3
// when it closes — holding one tuple of state, never a whole group.
//
// On inputs whose groups are not contiguous it simply treats every maximal
// run as a group (that is what boundary detection means); XiGroup is the
// order-preserving hash-bucket alternative that needs no sort.
type XiGroupStream struct {
	In         Op
	By         []string
	S1, S2, S3 []Command
}

// Eval implements Op.
func (x XiGroupStream) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := x.In.Eval(ctx, env)
	var prev value.Tuple
	for _, t := range in {
		if prev == nil {
			execCommands(ctx, env, t, x.S1)
		} else if !sameGroup(prev, t, x.By) {
			execCommands(ctx, env, prev, x.S3)
			execCommands(ctx, env, t, x.S1)
		}
		execCommands(ctx, env, t, x.S2)
		prev = t
	}
	if prev != nil {
		execCommands(ctx, env, prev, x.S3)
	}
	return in
}

// sameGroup reports whether two consecutive tuples belong to the same
// group: no attribute of A changed value.
func sameGroup(a, b value.Tuple, by []string) bool {
	for _, k := range by {
		if value.Key(a[k]) != value.Key(b[k]) {
			return false
		}
	}
	return true
}

func (x XiGroupStream) String() string {
	return fmt.Sprintf("Ξstream[%s | %s ; %s | %s]", cmdStrings(x.S1), strings.Join(x.By, ","),
		cmdStrings(x.S2), cmdStrings(x.S3))
}

// Children implements Op.
func (x XiGroupStream) Children() []Op { return []Op{x.In} }

// Exprs implements Op.
func (x XiGroupStream) Exprs() []Expr {
	var out []Expr
	for _, cs := range [][]Command{x.S1, x.S2, x.S3} {
		for _, c := range cs {
			if !c.IsLit {
				out = append(out, c.E)
			}
		}
	}
	return out
}

// Attrs implements Op.
func (x XiGroupStream) Attrs() ([]string, bool) { return x.In.Attrs() }

// Explain renders an operator tree as an indented multi-line plan.
func Explain(op Op) string {
	var sb strings.Builder
	var walk func(o Op, depth int)
	walk = func(o Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(o.String())
		sb.WriteByte('\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
		// Show nested algebraic expressions inside subscripts.
		for _, e := range o.Exprs() {
			explainNested(&sb, e, depth+1)
		}
	}
	walk(op, 0)
	return sb.String()
}

// ExplainDot renders an operator tree in Graphviz dot syntax. Nested
// algebraic expressions inside subscripts appear as dashed edges hanging
// off the operator that evaluates them per tuple — making the nested-loop
// structure the unnesting equivalences remove visually apparent.
func ExplainDot(op Op) string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var walk func(o Op) int
	var walkExpr func(e Expr, from int)
	walk = func(o Op) int {
		me := id
		id++
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", me, o.String())
		for _, c := range o.Children() {
			child := walk(c)
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", me, child)
		}
		for _, e := range o.Exprs() {
			walkExpr(e, me)
		}
		return me
	}
	walkExpr = func(e Expr, from int) {
		switch w := e.(type) {
		case NestedApply:
			child := walk(w.Plan)
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, label=\"nested %s\"];\n",
				from, child, w.F.String())
		case ExistsQ:
			child := walk(w.Range)
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, label=\"exists %s\"];\n", from, child, w.Var)
		case ForallQ:
			child := walk(w.Range)
			fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, label=\"forall %s\"];\n", from, child, w.Var)
		case AndExpr:
			walkExpr(w.L, from)
			walkExpr(w.R, from)
		case OrExpr:
			walkExpr(w.L, from)
			walkExpr(w.R, from)
		case NotExpr:
			walkExpr(w.E, from)
		case CmpExpr:
			walkExpr(w.L, from)
			walkExpr(w.R, from)
		case CondExpr:
			walkExpr(w.If, from)
			walkExpr(w.Then, from)
			walkExpr(w.Else, from)
		case Call:
			for _, a := range w.Args {
				walkExpr(a, from)
			}
		}
	}
	walk(op)
	sb.WriteString("}\n")
	return sb.String()
}

func explainNested(sb *strings.Builder, e Expr, depth int) {
	switch w := e.(type) {
	case NestedApply:
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("nested:\n")
		for _, line := range strings.Split(strings.TrimRight(Explain(w.Plan), "\n"), "\n") {
			sb.WriteString(strings.Repeat("  ", depth+1))
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	case ExistsQ:
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("∃-range:\n")
		for _, line := range strings.Split(strings.TrimRight(Explain(w.Range), "\n"), "\n") {
			sb.WriteString(strings.Repeat("  ", depth+1))
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	case ForallQ:
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("∀-range:\n")
		for _, line := range strings.Split(strings.TrimRight(Explain(w.Range), "\n"), "\n") {
			sb.WriteString(strings.Repeat("  ", depth+1))
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	case AndExpr:
		explainNested(sb, w.L, depth)
		explainNested(sb, w.R, depth)
	case NotExpr:
		explainNested(sb, w.E, depth)
	case CmpExpr:
		explainNested(sb, w.L, depth)
		explainNested(sb, w.R, depth)
	case Call:
		for _, a := range w.Args {
			explainNested(sb, a, depth)
		}
	}
}
