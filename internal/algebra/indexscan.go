package algebra

import (
	"fmt"

	"nalquery/internal/dom"
	"nalquery/internal/value"
)

// NodeIndex is the execution-time handle of one structural or value index
// (implemented by internal/index; a fake suffices for tests). ScanAll
// enumerates the indexed nodes in document order. ProbeEq returns the nodes
// whose atomized value equals the atomic key, ProbeCmp those comparing true
// under an ordered operator; both report ok=false when the index has no
// value layer (the operator then filters ScanAll itself).
type NodeIndex interface {
	ScanAll() []*dom.Node
	ProbeEq(key value.Value) ([]*dom.Node, bool)
	ProbeCmp(op value.CmpOp, key value.Value) ([]*dom.Node, bool)
}

// IndexScan binds Attr to the nodes of an indexed path instead of
// evaluating a path expression per input tuple — the planner substitutes it
// for Υ[Attr:path] (structural form, Key == nil) or σ(Υ) with a comparison
// predicate (value form, Key != nil): the index is probed with the key and
// only the matching nodes are emitted, hopped up Depth parent levels when
// the predicate path descends below the bound node.
//
// The node list is resolved once per open — it does not depend on the input
// tuples (the substitution only fires when the scanned document is bound by
// a constant doc() — so like Υ, the operator emits input × nodes, preserving
// input order with nodes in document order. Key is restricted to expressions
// without free tuple variables (constants and external parameters).
type IndexScan struct {
	In   Op
	Attr string
	// URI and Path identify the indexed document path(s) — for plan
	// explanation and cost estimation only; Index carries the data.
	URI  string
	Path string
	// Index resolves the node list; it is attached by the planner from the
	// compiling engine's snapshot.
	Index NodeIndex
	// Depth is the number of parent hops from an indexed node up to the
	// node bound to Attr (0: the indexed nodes bind directly).
	Depth int
	// Key, when non-nil, selects the value form: the index is probed with
	// Cmp against Key's atomized value. Key == nil is the structural form
	// (Cmp is meaningless then — CmpEq is the zero value, so nil-ness of
	// Key, not Cmp, distinguishes the forms).
	Cmp value.CmpOp
	Key Expr
	// EstCard is the planner's measured cardinality annotation (matching
	// nodes expected from the probe; scan count for the structural form).
	EstCard float64
}

// resolve produces the scan's node list: probe (or enumerate) the index,
// then hop up to the bound ancestors. Counted as one index scan; it is NOT
// a DocAccess — no document traversal runs, which is the point.
func (s IndexScan) resolve(ctx *Ctx, env value.Tuple) []*dom.Node {
	ctx.Stats.IndexScans++
	var nodes []*dom.Node
	switch {
	case s.Key == nil:
		nodes = s.Index.ScanAll()
	default:
		key := s.Key.Eval(ctx, env)
		switch s.Cmp {
		case value.CmpEq:
			// The general comparison is existential over the key's atoms:
			// probe each atom and union the matches.
			var failed bool
			for _, atom := range value.Atomize(key) {
				part, ok := s.Index.ProbeEq(atom)
				if !ok {
					failed = true
					break
				}
				nodes = append(nodes, part...)
			}
			if failed {
				nodes = filterScan(s.Index, key, s.Cmp)
			} else if len(nodes) > 1 {
				nodes = sortDedupe(nodes)
			}
		case value.CmpNe:
			// ∃-≠ is not the complement of ∃-=: filter the node list with
			// the same general comparison σ would run.
			nodes = filterScan(s.Index, key, s.Cmp)
		default:
			var failed bool
			for _, atom := range value.Atomize(key) {
				part, ok := s.Index.ProbeCmp(s.Cmp, atom)
				if !ok {
					failed = true
					break
				}
				nodes = append(nodes, part...)
			}
			if failed {
				nodes = filterScan(s.Index, key, s.Cmp)
			} else if len(nodes) > 1 {
				nodes = sortDedupe(nodes)
			}
		}
	}
	if s.Depth > 0 && len(nodes) > 0 {
		up := make([]*dom.Node, 0, len(nodes))
		for _, n := range nodes {
			for i := 0; i < s.Depth && n != nil; i++ {
				n = n.Parent
			}
			if n != nil {
				up = append(up, n)
			}
		}
		nodes = sortDedupe(up)
	}
	return nodes
}

// filterScan is the always-correct fallback: the full node list filtered
// with the exact comparison the substituted σ predicate would evaluate.
func filterScan(ix NodeIndex, key value.Value, op value.CmpOp) []*dom.Node {
	var out []*dom.Node
	for _, n := range ix.ScanAll() {
		if value.GeneralCompare(value.NodeVal{Node: n}, key, op) {
			out = append(out, n)
		}
	}
	return out
}

func sortDedupe(nodes []*dom.Node) []*dom.Node {
	dom.SortDocOrder(nodes)
	out := nodes[:1]
	for _, n := range nodes[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// Eval implements Op (the definitional evaluator; the legacy pull engine
// reaches it through the sliceIter fallback).
func (s IndexScan) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	nodes := s.resolve(ctx, env)
	in := s.In.Eval(ctx, env)
	var out value.TupleSeq
	for _, t := range in {
		if ctx.Cancelled() {
			break
		}
		for _, n := range nodes {
			nt := t.Copy()
			nt[s.Attr] = value.NodeVal{Node: n}
			ctx.ChargeTuple(TripScan, nt)
			out = append(out, nt)
		}
	}
	ctx.Stats.Tuples += int64(len(out))
	return out
}

func (s IndexScan) String() string {
	if s.Key == nil {
		return fmt.Sprintf("IdxScan[%s:%s%s]", s.Attr, s.URI, s.Path)
	}
	return fmt.Sprintf("IdxScan[%s:%s%s %s %s ↑%d]",
		s.Attr, s.URI, s.Path, s.Cmp, s.Key.String(), s.Depth)
}

// Children implements Op.
func (s IndexScan) Children() []Op { return []Op{s.In} }

// Exprs implements Op.
func (s IndexScan) Exprs() []Expr {
	if s.Key == nil {
		return nil
	}
	return []Expr{s.Key}
}

// Attrs implements Op.
func (s IndexScan) Attrs() ([]string, bool) {
	in, ok := s.In.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(in, []string{s.Attr}), true
}

// rowIndexScanIter is the slot-native iterator of IndexScan: the node list
// is resolved once at open, then emitted per input row like Υ's item loop.
type rowIndexScanIter struct {
	in    RowIter
	lay   *value.Layout
	slot  int
	nodes []*dom.Node
	ctx   *Ctx

	cur value.Row
	pos int
}

func (s *rowIndexScanIter) Next() (value.Row, bool) {
	for {
		if s.ctx.Cancelled() {
			return value.Row{}, false
		}
		if s.pos < len(s.nodes) {
			vals := make([]value.Value, s.lay.Width())
			copy(vals, s.cur.Vals)
			vals[s.slot] = value.NodeVal{Node: s.nodes[s.pos]}
			s.pos++
			s.ctx.Stats.Tuples++
			r := value.Row{Lay: s.lay, Vals: vals}
			s.ctx.ChargeRow(TripScan, r)
			return r, true
		}
		r, ok := s.in.Next()
		if !ok {
			return value.Row{}, false
		}
		s.cur = r
		s.pos = 0
	}
}

func (s *rowIndexScanIter) Close() { s.in.Close() }
