package algebra

import (
	"testing"

	"nalquery/internal/value"
)

// The recursive definitions of Sec. 2 fix the empty-input behaviour of
// every operator: unary operators map ε to ε, and binary operators map an
// empty left operand to ε. This table test pins that behaviour across the
// whole operator inventory — including the physical and unordered variants
// added on top of the paper's algebra.
func TestEmptyInputConventions(t *testing.T) {
	empty := constOp{attrs: []string{"A1", "C"}}
	nonEmpty := constOp{
		ts:    value.TupleSeq{{"A2": value.Int(1), "B": value.Int(2)}},
		attrs: []string{"A2", "B"},
	}
	eq := CmpExpr{L: Var{Name: "A1"}, R: Var{Name: "A2"}, Op: value.CmpEq}
	truth := ConstVal{V: value.Bool(true)}

	unary := map[string]Op{
		"σ":        Select{In: empty, Pred: truth},
		"Π":        Project{In: empty, Names: []string{"A1"}},
		"Π̄":       ProjectDrop{In: empty, Names: []string{"C"}},
		"Π-rename": ProjectRename{In: empty, Pairs: []Rename{{New: "X", Old: "A1"}}},
		"ΠD":       ProjectDistinct{In: empty, Pairs: []Rename{{New: "A1", Old: "A1"}}},
		"χ":        Map{In: empty, Attr: "g", E: truth},
		"Υ":        UnnestMap{In: empty, Attr: "x", E: Var{Name: "A1"}},
		"Υ-at":     UnnestMap{In: empty, Attr: "x", PosAttr: "i", E: Var{Name: "A1"}},
		"Γ-unary":  GroupUnary{In: empty, G: "g", By: []string{"A1"}, Theta: value.CmpEq, F: SFCount{}},
		"µ":        Unnest{In: empty, Attr: "A1"},
		"µD":       UnnestDistinct{In: empty, Attr: "A1"},
		"Ξ":        XiSimple{In: empty, Cmds: []Command{{IsLit: true, Lit: "x"}}},
		"Sort":     Sort{In: empty, By: []string{"A1"}},
		"χ#":       AttachSeq{In: empty, Attr: "#"},
		"Γᵁ":       UnorderedGroupUnary{In: empty, G: "g", By: []string{"A1"}, Theta: value.CmpEq, F: SFCount{}},
	}
	for name, op := range unary {
		if got := op.Eval(NewCtx(nil), nil); len(got) != 0 {
			t.Errorf("%s(ε) produced %d tuples, want ε", name, len(got))
		}
	}

	binaryEmptyLeft := map[string]Op{
		"×":         Cross{L: empty, R: nonEmpty},
		"⋈":         Join{L: empty, R: nonEmpty, Pred: eq},
		"⋉":         SemiJoin{L: empty, R: nonEmpty, Pred: eq},
		"▷":         AntiJoin{L: empty, R: nonEmpty, Pred: eq},
		"⟕":         OuterJoin{L: empty, R: nonEmpty, Pred: eq, G: "B", Default: SFCount{}},
		"Γ-binary":  GroupBinary{L: empty, R: nonEmpty, G: "g", LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
		"Grace":     GraceJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		"OPHJ":      OPHashJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		"⋈ᵁ":        UnorderedJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		"⋉ᵁ":        UnorderedSemiJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		"▷ᵁ":        UnorderedAntiJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		"⟕ᵁ":        UnorderedOuterJoin{L: empty, R: nonEmpty, LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, G: "B", Default: SFCount{}},
		"Γᵁ-binary": UnorderedGroupBinary{L: empty, R: nonEmpty, G: "g", LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}},
	}
	for name, op := range binaryEmptyLeft {
		if got := op.Eval(NewCtx(nil), nil); len(got) != 0 {
			t.Errorf("%s(ε, e2) produced %d tuples, want ε", name, len(got))
		}
	}

	// Empty RIGHT operands: the left side still flows where the definition
	// says so.
	left := constOp{
		ts:    value.TupleSeq{{"A1": value.Int(1), "C": value.Int(0)}},
		attrs: []string{"A1", "C"},
	}
	emptyRight := constOp{attrs: []string{"A2", "B"}}
	if got := (SemiJoin{L: left, R: emptyRight, Pred: eq}).Eval(NewCtx(nil), nil); len(got) != 0 {
		t.Errorf("⋉ with empty right produced %d tuples, want ε", len(got))
	}
	if got := (AntiJoin{L: left, R: emptyRight, Pred: eq}).Eval(NewCtx(nil), nil); len(got) != 1 {
		t.Errorf("▷ with empty right produced %d tuples, want the full left side", len(got))
	}
	oj := OuterJoin{L: left, R: emptyRight, Pred: eq, G: "B", Default: SFCount{}}
	got := oj.Eval(NewCtx(nil), nil)
	if len(got) != 1 {
		t.Fatalf("⟕ with empty right produced %d tuples, want 1 padded tuple", len(got))
	}
	if c, ok := got[0]["B"].(value.Int); !ok || c != 0 {
		t.Errorf("⟕ default: g = %v, want count(ε) = 0", got[0]["B"])
	}
	gb := GroupBinary{L: left, R: emptyRight, G: "g",
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}, Theta: value.CmpEq, F: SFCount{}}
	got = gb.Eval(NewCtx(nil), nil)
	if len(got) != 1 {
		t.Fatalf("Γ-binary with empty right produced %d tuples, want 1", len(got))
	}
	if c, ok := got[0]["g"].(value.Int); !ok || c != 0 {
		t.Errorf("Γ-binary empty group: g = %v, want 0", got[0]["g"])
	}
}
