package algebra

import (
	"testing"

	"nalquery/internal/value"
)

func callV(fn string, args ...value.Value) value.Value {
	return evalBuiltin(fn, args)
}

func wantStr(t *testing.T, got value.Value, want string) {
	t.Helper()
	s, ok := got.(value.Str)
	if !ok || string(s) != want {
		t.Errorf("got %v (%T), want %q", got, got, want)
	}
}

func wantNum(t *testing.T, got value.Value, want float64) {
	t.Helper()
	switch w := got.(type) {
	case value.Float:
		if float64(w) != want {
			t.Errorf("got %v, want %g", w, want)
		}
	case value.Int:
		if float64(w) != want {
			t.Errorf("got %v, want %g", w, want)
		}
	default:
		t.Errorf("got %v (%T), want number %g", got, got, want)
	}
}

// TestSubstring: 1-based positions, optional length, rune safety, clamping.
func TestSubstring(t *testing.T) {
	wantStr(t, callV("substring", value.Str("motor car"), value.Float(6)), " car")
	wantStr(t, callV("substring", value.Str("metadata"), value.Float(4), value.Float(3)), "ada")
	wantStr(t, callV("substring", value.Str("abc"), value.Float(0)), "abc")
	wantStr(t, callV("substring", value.Str("abc"), value.Float(10)), "")
	wantStr(t, callV("substring", value.Str("äöü"), value.Float(2), value.Float(1)), "ö")
	wantStr(t, callV("substring", value.Null{}, value.Float(1)), "")
}

// TestSubstringBeforeAfter: standard XPath behaviour, empty on no match.
func TestSubstringBeforeAfter(t *testing.T) {
	wantStr(t, callV("substring-before", value.Str("1999/04/01"), value.Str("/")), "1999")
	wantStr(t, callV("substring-after", value.Str("1999/04/01"), value.Str("/")), "04/01")
	wantStr(t, callV("substring-before", value.Str("abc"), value.Str("z")), "")
	wantStr(t, callV("substring-after", value.Str("abc"), value.Str("z")), "")
	wantStr(t, callV("substring-before", value.Str("abc"), value.Str("")), "")
}

// TestStringJoin: joins atomized items with the separator.
func TestStringJoin(t *testing.T) {
	wantStr(t, callV("string-join",
		value.Seq{value.Str("a"), value.Str("b"), value.Str("c")}, value.Str("-")), "a-b-c")
	wantStr(t, callV("string-join", value.Seq{}, value.Str("-")), "")
}

// TestTranslateFn: character mapping, deletion for unmapped characters.
func TestTranslateFn(t *testing.T) {
	wantStr(t, callV("translate", value.Str("bar"), value.Str("abc"), value.Str("ABC")), "BAr")
	wantStr(t, callV("translate", value.Str("--aaa--"), value.Str("abc-"), value.Str("ABC")), "AAA")
}

// TestRoundingFamily: abs, floor, ceiling, round (half to +inf).
func TestRoundingFamily(t *testing.T) {
	wantNum(t, callV("abs", value.Float(-3.5)), 3.5)
	wantNum(t, callV("floor", value.Float(2.7)), 2)
	wantNum(t, callV("floor", value.Float(-2.1)), -3)
	wantNum(t, callV("ceiling", value.Float(2.1)), 3)
	wantNum(t, callV("ceiling", value.Float(-2.7)), -2)
	wantNum(t, callV("round", value.Float(2.5)), 3)
	wantNum(t, callV("round", value.Float(-2.5)), -2)
	wantNum(t, callV("round", value.Str("3.2")), 3)
	if _, ok := callV("round", value.Str("x")).(value.Null); !ok {
		t.Errorf("round on non-numeric must be empty")
	}
}

// TestBooleanFn: effective boolean value.
func TestBooleanFn(t *testing.T) {
	cases := []struct {
		in   value.Value
		want bool
	}{
		{value.Str(""), false},
		{value.Str("x"), true},
		{value.Int(0), false},
		{value.Int(1), true},
		{value.Seq{}, false},
		{value.Seq{value.Int(0)}, true}, // non-empty sequence
		{value.Null{}, false},
	}
	for _, c := range cases {
		if got := callV("boolean", c.in); bool(got.(value.Bool)) != c.want {
			t.Errorf("boolean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestCardinalityFns: zero-or-one and exactly-one.
func TestCardinalityFns(t *testing.T) {
	one := value.Seq{value.Int(7)}
	two := value.Seq{value.Int(7), value.Int(8)}
	if _, ok := callV("zero-or-one", two).(value.Null); !ok {
		t.Errorf("zero-or-one on two items must be empty")
	}
	if got := callV("zero-or-one", one); !value.DeepEqual(got, one) {
		t.Errorf("zero-or-one on one item must pass through, got %v", got)
	}
	if _, ok := callV("exactly-one", value.Seq{}).(value.Null); !ok {
		t.Errorf("exactly-one on empty must be empty")
	}
	if got := callV("exactly-one", one); !value.DeepEqual(got, one) {
		t.Errorf("exactly-one on one item must pass through, got %v", got)
	}
}
