package algebra

import (
	"fmt"
	"sort"
	"strings"

	"nalquery/internal/value"
)

// The unordered operator family. The paper opens (Sec. 1) with the
// observation that the object-oriented unnesting techniques of Cluet and
// Moerkotte [9, 10] apply when the result's order is irrelevant — when the
// query is wrapped in XQuery's unordered() function, or inside contexts the
// processor can prove order-insensitive (aggregates, distinct-values,
// quantifiers). These operators are the engine's unordered algebra: they
// compute the same bags as their order-preserving counterparts but emit
// output in join/group key order instead of probe order — the natural order
// of a partitioned hash implementation, which never pays for order
// bookkeeping. Determinism is retained (key order is a fixed total order),
// as the paper requires of even its non-order-preserving operators (ΠD).
//
// Correctness contract, property-tested in unordered_test.go: for every
// operator U with ordered counterpart O, U(e…) is a permutation of O(e…),
// and U is insensitive to permutations of its inputs whenever its subscript
// function is.

// partitionSorted splits tuples into HashKey buckets and returns the keys
// in the canonical value.LessKey order — the deterministic partition order
// the family emits output in. The slot engine's row iterators partition
// with the same key function and the same order, so both engines produce
// identical sequences (differential-tested in partitioned_rows_test.go).
func partitionSorted(ts value.TupleSeq, attrs []string) ([]value.HashKey, map[value.HashKey]value.TupleSeq) {
	buckets := make(map[value.HashKey]value.TupleSeq, len(ts))
	var keys []value.HashKey
	for _, t := range ts {
		k := tupleHashKey(t, attrs)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], t)
	}
	sort.Slice(keys, func(i, j int) bool { return value.LessKey(keys[i], keys[j]) })
	return keys, buckets
}

// hashBuckets is the build side of the partitioned operators: HashKey
// buckets preserving input order, no key list.
func hashBuckets(ts value.TupleSeq, attrs []string) map[value.HashKey]value.TupleSeq {
	h := make(map[value.HashKey]value.TupleSeq, len(ts))
	for _, t := range ts {
		k := tupleHashKey(t, attrs)
		h[k] = append(h[k], t)
	}
	return h
}

// UnorderedJoin is the unordered hash join: the bag σ[A1=A2 ∧ residual]
// (e1 × e2) emitted in key order.
type UnorderedJoin struct {
	L, R     Op
	LAttrs   []string
	RAttrs   []string
	Residual Expr
}

// Eval implements Op.
func (j UnorderedJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := j.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	keys, lParts := partitionSorted(l, j.LAttrs)
	rParts := hashBuckets(r, j.RAttrs)
	var out value.TupleSeq
	for _, k := range keys {
		rp := rParts[k]
		if len(rp) == 0 {
			continue
		}
		for _, lt := range lParts[k] {
			for _, rt := range rp {
				if j.Residual != nil &&
					!value.EffectiveBool(j.Residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
					continue
				}
				out = append(out, lt.Concat(rt))
			}
		}
	}
	return out
}

func (j UnorderedJoin) String() string {
	return fmt.Sprintf("⋈ᵁ[%s=%s]", strings.Join(j.LAttrs, ","), strings.Join(j.RAttrs, ","))
}

// Children implements Op.
func (j UnorderedJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j UnorderedJoin) Exprs() []Expr {
	if j.Residual != nil {
		return []Expr{j.Residual}
	}
	return nil
}

// Attrs implements Op.
func (j UnorderedJoin) Attrs() ([]string, bool) {
	l, ok1 := j.L.Attrs()
	r, ok2 := j.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}

// UnorderedSemiJoin emits, in key order, the left tuples with at least one
// join partner.
type UnorderedSemiJoin struct {
	L, R     Op
	LAttrs   []string
	RAttrs   []string
	Residual Expr
}

// Eval implements Op.
func (j UnorderedSemiJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := j.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	keys, lParts := partitionSorted(l, j.LAttrs)
	rParts := hashBuckets(r, j.RAttrs)
	var out value.TupleSeq
	for _, k := range keys {
		rp := rParts[k]
		if len(rp) == 0 {
			continue
		}
		for _, lt := range lParts[k] {
			if j.Residual == nil {
				out = append(out, lt)
				continue
			}
			for _, rt := range rp {
				if value.EffectiveBool(j.Residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
					out = append(out, lt)
					break
				}
			}
		}
	}
	return out
}

func (j UnorderedSemiJoin) String() string {
	return fmt.Sprintf("⋉ᵁ[%s=%s]", strings.Join(j.LAttrs, ","), strings.Join(j.RAttrs, ","))
}

// Children implements Op.
func (j UnorderedSemiJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j UnorderedSemiJoin) Exprs() []Expr {
	if j.Residual != nil {
		return []Expr{j.Residual}
	}
	return nil
}

// Attrs implements Op.
func (j UnorderedSemiJoin) Attrs() ([]string, bool) { return j.L.Attrs() }

// UnorderedAntiJoin emits, in key order, the left tuples without any join
// partner.
type UnorderedAntiJoin struct {
	L, R     Op
	LAttrs   []string
	RAttrs   []string
	Residual Expr
}

// Eval implements Op.
func (j UnorderedAntiJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := j.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	keys, lParts := partitionSorted(l, j.LAttrs)
	rParts := hashBuckets(r, j.RAttrs)
	var out value.TupleSeq
	for _, k := range keys {
		rp := rParts[k]
		for _, lt := range lParts[k] {
			matched := false
			for _, rt := range rp {
				if j.Residual == nil ||
					value.EffectiveBool(j.Residual.Eval(ctx, env.Concat(lt).Concat(rt))) {
					matched = true
					break
				}
			}
			if !matched {
				out = append(out, lt)
			}
		}
	}
	return out
}

func (j UnorderedAntiJoin) String() string {
	return fmt.Sprintf("▷ᵁ[%s=%s]", strings.Join(j.LAttrs, ","), strings.Join(j.RAttrs, ","))
}

// Children implements Op.
func (j UnorderedAntiJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j UnorderedAntiJoin) Exprs() []Expr {
	if j.Residual != nil {
		return []Expr{j.Residual}
	}
	return nil
}

// Attrs implements Op.
func (j UnorderedAntiJoin) Attrs() ([]string, bool) { return j.L.Attrs() }

// UnorderedOuterJoin is the unordered counterpart of the paper's ⟕ with
// defaults: matched left tuples join as usual, unmatched ones are ⊥-padded
// with the default on G — all in key order.
type UnorderedOuterJoin struct {
	L, R    Op
	LAttrs  []string
	RAttrs  []string
	G       string
	Default SeqFunc
}

// Eval implements Op.
func (j UnorderedOuterJoin) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := j.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := j.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	rAttrs, rKnown := j.R.Attrs()
	if !rKnown && len(r) > 0 {
		rAttrs = r[0].Attrs()
	}
	var padAttrs []string
	for _, a := range rAttrs {
		if a != j.G {
			padAttrs = append(padAttrs, a)
		}
	}
	keys, lParts := partitionSorted(l, j.LAttrs)
	rParts := hashBuckets(r, j.RAttrs)
	var out value.TupleSeq
	for _, k := range keys {
		rp := rParts[k]
		for _, lt := range lParts[k] {
			if len(rp) == 0 {
				nt := lt.Concat(value.NullTuple(padAttrs))
				nt[j.G] = j.Default.Apply(ctx, env, nil)
				out = append(out, nt)
				continue
			}
			for _, rt := range rp {
				out = append(out, lt.Concat(rt))
			}
		}
	}
	return out
}

func (j UnorderedOuterJoin) String() string {
	return fmt.Sprintf("⟕ᵁ[%s:%s(); %s=%s]", j.G, j.Default.String(),
		strings.Join(j.LAttrs, ","), strings.Join(j.RAttrs, ","))
}

// Children implements Op.
func (j UnorderedOuterJoin) Children() []Op { return []Op{j.L, j.R} }

// Exprs implements Op.
func (j UnorderedOuterJoin) Exprs() []Expr { return nil }

// Attrs implements Op.
func (j UnorderedOuterJoin) Attrs() ([]string, bool) {
	l, ok1 := j.L.Attrs()
	r, ok2 := j.R.Attrs()
	if !ok1 || !ok2 {
		return nil, false
	}
	return unionAttrs(l, r), true
}

// UnorderedGroupUnary is Γ emitting one tuple per distinct key in key order
// (the ordered operator emits keys in first-occurrence order). Only θ = '='
// admits the hash implementation; general θ falls back to comparing every
// key against every tuple, still in key order.
type UnorderedGroupUnary struct {
	In    Op
	G     string
	By    []string
	Theta value.CmpOp
	F     SeqFunc
}

// Eval implements Op.
func (g UnorderedGroupUnary) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	in := g.In.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, in)
	keys, buckets := partitionSorted(in, g.By)
	var out value.TupleSeq
	for _, k := range keys {
		b := buckets[k]
		keyT := b[0].Project(g.By)
		grp := b
		if g.Theta != value.CmpEq {
			grp = nil
			for _, t := range in {
				if thetaMatch(keyT, t, g.By, g.By, g.Theta) {
					grp = append(grp, t)
				}
			}
		}
		nt := keyT.Copy()
		nt[g.G] = g.F.Apply(ctx, env, grp)
		out = append(out, nt)
	}
	return out
}

func (g UnorderedGroupUnary) String() string {
	return fmt.Sprintf("Γᵁ[%s;%s%s;%s]", g.G, strings.Join(g.By, ","), g.Theta, g.F.String())
}

// Children implements Op.
func (g UnorderedGroupUnary) Children() []Op { return []Op{g.In} }

// Exprs implements Op.
func (g UnorderedGroupUnary) Exprs() []Expr { return nil }

// Attrs implements Op.
func (g UnorderedGroupUnary) Attrs() ([]string, bool) {
	return unionAttrs(g.By, []string{g.G}), true
}

// UnorderedGroupBinary is the nest-join emitting left tuples in key order.
type UnorderedGroupBinary struct {
	L, R   Op
	G      string
	LAttrs []string
	RAttrs []string
	Theta  value.CmpOp
	F      SeqFunc
}

// Eval implements Op.
func (g UnorderedGroupBinary) Eval(ctx *Ctx, env value.Tuple) value.TupleSeq {
	l := g.L.Eval(ctx, env)
	if len(l) == 0 {
		return nil
	}
	r := g.R.Eval(ctx, env)
	ctx.ChargeTuples(TripPartition, l)
	ctx.ChargeTuples(TripPartition, r)
	keys, lParts := partitionSorted(l, g.LAttrs)
	var rHash map[value.HashKey]value.TupleSeq
	if g.Theta == value.CmpEq {
		rHash = hashBuckets(r, g.RAttrs)
	}
	var out value.TupleSeq
	for _, k := range keys {
		for _, lt := range lParts[k] {
			var grp value.TupleSeq
			if g.Theta == value.CmpEq {
				grp = rHash[k]
			} else {
				for _, rt := range r {
					if thetaMatch(lt, rt, g.LAttrs, g.RAttrs, g.Theta) {
						grp = append(grp, rt)
					}
				}
			}
			nt := lt.Copy()
			nt[g.G] = g.F.Apply(ctx, env, grp)
			out = append(out, nt)
		}
	}
	return out
}

func (g UnorderedGroupBinary) String() string {
	return fmt.Sprintf("Γᵁ[%s;%s%s%s;%s]", g.G, strings.Join(g.LAttrs, ","), g.Theta,
		strings.Join(g.RAttrs, ","), g.F.String())
}

// Children implements Op.
func (g UnorderedGroupBinary) Children() []Op { return []Op{g.L, g.R} }

// Exprs implements Op.
func (g UnorderedGroupBinary) Exprs() []Expr { return nil }

// Attrs implements Op.
func (g UnorderedGroupBinary) Attrs() ([]string, bool) {
	l, ok := g.L.Attrs()
	if !ok {
		return nil, false
	}
	return unionAttrs(l, []string{g.G}), true
}
