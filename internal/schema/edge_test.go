package schema

import "testing"

// Edge-case tests for the DTD-fact decision procedures behind the
// condition-bearing equivalences.

// TestUnknownDocumentConservative: facts about unregistered documents must
// come back negative — the rewriter then skips the condition-bearing
// equivalences rather than guessing.
func TestUnknownDocumentConservative(t *testing.T) {
	c := NewCatalog()
	if c.Has("nope.xml") {
		t.Errorf("Has must be false for unregistered documents")
	}
	if c.SameNodeSet("nope.xml", "//a", "//b/a") {
		t.Errorf("SameNodeSet must be false without facts")
	}
	if c.SingletonPath("nope.xml", "a", "b") {
		t.Errorf("SingletonPath must be false without facts")
	}
	if c.CoversAllValues("nope.xml", "//a", "//b/a") {
		t.Errorf("CoversAllValues must be false without facts")
	}
}

// TestSameNodeSetRequiresUniqueParent: when an element occurs under two
// parents, //x and //p/x differ and the equality must be rejected.
func TestSameNodeSetRequiresUniqueParent(t *testing.T) {
	c := NewCatalog()
	c.Doc("d.xml").
		Child("root", "p", 0, -1).
		Child("root", "q", 0, -1).
		Child("p", "x", 0, -1).
		Child("q", "x", 0, -1)
	if c.SameNodeSet("d.xml", "//x", "//p/x") {
		t.Errorf("//x also occurs under q; equality with //p/x must be rejected")
	}
}

// TestSameNodeSetAcceptsUniqueChain: with a single parent chain the
// equality holds.
func TestSameNodeSetAcceptsUniqueChain(t *testing.T) {
	c := NewCatalog()
	c.Doc("d.xml").
		Child("root", "p", 0, -1).
		Child("p", "x", 0, -1)
	if !c.SameNodeSet("d.xml", "//x", "//p/x") {
		t.Errorf("unique chain //p/x must equal //x")
	}
	if !c.SameNodeSet("d.xml", "//p/x", "//x") {
		t.Errorf("node-set equality must be symmetric")
	}
}

// TestRequiredAttrFacts: required vs optional attributes, unknown
// elements.
func TestRequiredAttrFacts(t *testing.T) {
	c := NewCatalog()
	f := c.Doc("d.xml").
		Child("root", "book", 0, -1).
		Attr("book", "year", true).
		Attr("book", "isbn", false)
	if !f.RequiredAttr("book", "year") {
		t.Errorf("year is #REQUIRED")
	}
	if f.RequiredAttr("book", "isbn") {
		t.Errorf("isbn is #IMPLIED")
	}
	if f.RequiredAttr("book", "missing") {
		t.Errorf("unknown attribute cannot be required")
	}
	if f.RequiredAttr("unknown", "year") {
		t.Errorf("unknown element cannot carry facts")
	}
}

// TestSingletonVsRepeatedChild: multiplicity facts distinguish 1 from *.
func TestSingletonVsRepeatedChild(t *testing.T) {
	c := NewCatalog()
	f := c.Doc("d.xml").
		Child("book", "title", 1, 1).
		Child("book", "author", 1, -1)
	if !f.SingletonChild("book", "title") {
		t.Errorf("title is a singleton child")
	}
	if f.SingletonChild("book", "author") {
		t.Errorf("author repeats; not a singleton")
	}
	if !f.RequiredChild("book", "title") || !f.RequiredChild("book", "author") {
		t.Errorf("both children are required (minOccurs 1)")
	}
	if f.RequiredChild("book", "missing") {
		t.Errorf("unknown child cannot be required")
	}
}
