package schema

import "testing"

func TestSameNodeSetUseCases(t *testing.T) {
	c := UseCases()
	cases := []struct {
		uri, a, b string
		want      bool
	}{
		// The Sec. 5.1 condition: every author is directly under a book.
		{"bib.xml", "//author", "//book/author", true},
		{"bib.xml", "//book/author", "//author", true}, // symmetric
		// Identical chains.
		{"prices.xml", "//book/title", "//book/title", true},
		// The Sec. 5.6 condition.
		{"bids.xml", "//itemno", "//bidtuple/itemno", true},
		// DBLP: authors occur under several publication kinds (the paper's
		// counterexample).
		{"dblp.xml", "//author", "//book/author", false},
		// Different leaf elements never match.
		{"bib.xml", "//author", "//book/title", false},
		// Unknown document.
		{"nope.xml", "//a", "//a", false},
		// title occurs under book only in bib.xml, but chains must still
		// correspond element-wise.
		{"bib.xml", "//title", "//book/title", true},
		{"bib.xml", "//last", "//book/author/last", false}, // last also under editor
	}
	for _, cse := range cases {
		if got := c.SameNodeSet(cse.uri, cse.a, cse.b); got != cse.want {
			t.Errorf("SameNodeSet(%s, %s, %s) = %v, want %v", cse.uri, cse.a, cse.b, got, cse.want)
		}
	}
}

func TestSingletonPath(t *testing.T) {
	c := UseCases()
	cases := []struct {
		uri, ctx, path string
		want           bool
	}{
		{"bib.xml", "book", "title", true},
		{"bib.xml", "book", "price", true},
		{"bib.xml", "book", "author", false},
		{"bib.xml", "book", "@year", true},
		{"bib.xml", "book", "author/last", false}, // author is multi
		{"bib.xml", "author", "last", true},
		{"bids.xml", "bidtuple", "itemno", true},
		{"nope.xml", "book", "title", false},
	}
	for _, cse := range cases {
		if got := c.SingletonPath(cse.uri, cse.ctx, cse.path); got != cse.want {
			t.Errorf("SingletonPath(%s, %s, %s) = %v, want %v", cse.uri, cse.ctx, cse.path, got, cse.want)
		}
	}
}

func TestCustomFacts(t *testing.T) {
	c := NewCatalog()
	f := c.Doc("mine.xml")
	f.Child("root", "item", 0, -1)
	f.Child("item", "id", 1, 1)
	if !c.Has("mine.xml") || c.Has("other.xml") {
		t.Fatalf("Has wrong")
	}
	if !c.SameNodeSet("mine.xml", "//id", "//item/id") {
		t.Fatalf("custom facts must support SameNodeSet")
	}
	parents, ok := f.Parents("id")
	if !ok || !parents["item"] {
		t.Fatalf("parents: %v %v", parents, ok)
	}
	if !f.SingletonChild("item", "id") || f.SingletonChild("root", "item") {
		t.Fatalf("singleton facts wrong")
	}
	if !f.RequiredChild("item", "id") || f.RequiredChild("root", "item") {
		t.Fatalf("required facts wrong")
	}
}

func TestSameNodeSetRejectsAttributePaths(t *testing.T) {
	c := UseCases()
	if c.SameNodeSet("bib.xml", "//book/@year", "//book/@year") {
		t.Fatalf("attribute chains are out of scope for node-set reasoning")
	}
}

func TestCoversAllValues(t *testing.T) {
	c := UseCases()
	if !c.CoversAllValues("bib.xml", "//author", "//book/author") {
		t.Fatalf("value coverage must follow node-set equality")
	}
}
