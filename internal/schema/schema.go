// Package schema holds the DTD-derived facts the optimizer needs to verify
// the side conditions of the unnesting equivalences.
//
// The paper verifies conditions such as e1 = ΠD A1:A2(ΠA2(e2)) "from the
// DTD" (Sec. 5.1: the condition holds "if there are no author elements other
// than those directly under book elements ... However, it is not true for
// DBLP's DTD"). The catalog answers exactly those questions: which parents
// an element may occur under, whether a child is unique per parent, and
// whether two descendant paths denote the same node set.
package schema

import (
	"strings"
)

// Catalog maps document URIs to their DTD facts.
type Catalog struct {
	docs map[string]*DocFacts
}

// DocFacts records the structural facts of one DTD.
type DocFacts struct {
	// parents[child] is the set of element names child may occur under.
	parents map[string]map[string]bool
	// singleton["parent/child"] is true when at most one child occurs per
	// parent element.
	singleton map[string]bool
	// required["parent/child"] is true when at least one child occurs per
	// parent element.
	required map[string]bool
	// requiredAttr["elem/@name"] is true when the attribute is #REQUIRED.
	requiredAttr map[string]bool
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{docs: map[string]*DocFacts{}}
}

// Doc returns (creating if needed) the fact set of a document URI.
func (c *Catalog) Doc(uri string) *DocFacts {
	f, ok := c.docs[uri]
	if !ok {
		f = &DocFacts{
			parents:      map[string]map[string]bool{},
			singleton:    map[string]bool{},
			required:     map[string]bool{},
			requiredAttr: map[string]bool{},
		}
		c.docs[uri] = f
	}
	return f
}

// Clone deep-copies the catalog. The engine's copy-on-write snapshot
// scheme hands mutation a fresh copy so catalogs already captured by
// compiled queries — and snapshots concurrent compilations are reading —
// stay immutable.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{docs: make(map[string]*DocFacts, len(c.docs))}
	for uri, f := range c.docs {
		nf := &DocFacts{
			parents:      make(map[string]map[string]bool, len(f.parents)),
			singleton:    make(map[string]bool, len(f.singleton)),
			required:     make(map[string]bool, len(f.required)),
			requiredAttr: make(map[string]bool, len(f.requiredAttr)),
		}
		for child, ps := range f.parents {
			np := make(map[string]bool, len(ps))
			for k, v := range ps {
				np[k] = v
			}
			nf.parents[child] = np
		}
		for k, v := range f.singleton {
			nf.singleton[k] = v
		}
		for k, v := range f.required {
			nf.required[k] = v
		}
		for k, v := range f.requiredAttr {
			nf.requiredAttr[k] = v
		}
		out.docs[uri] = nf
	}
	return out
}

// Has reports whether facts are registered for the URI.
func (c *Catalog) Has(uri string) bool {
	_, ok := c.docs[uri]
	return ok
}

// Child declares that child elements occur under parent. minOccurs/maxOccurs
// describe the count per parent instance: use max = 1 for unique children
// and max < 0 for unbounded.
func (f *DocFacts) Child(parent, child string, minOccurs, maxOccurs int) *DocFacts {
	p, ok := f.parents[child]
	if !ok {
		p = map[string]bool{}
		f.parents[child] = p
	}
	p[parent] = true
	key := parent + "/" + child
	f.singleton[key] = maxOccurs == 1
	f.required[key] = minOccurs >= 1
	return f
}

// Attr declares an attribute of an element; required corresponds to
// #REQUIRED in the DTD.
func (f *DocFacts) Attr(elem, name string, required bool) *DocFacts {
	f.requiredAttr[elem+"/@"+name] = required
	return f
}

// RequiredAttr reports whether the attribute is #REQUIRED on the element.
func (f *DocFacts) RequiredAttr(elem, name string) bool {
	return f.requiredAttr[elem+"/@"+name]
}

// Parents returns the possible parent elements of child, and whether the
// fact is known.
func (f *DocFacts) Parents(child string) (map[string]bool, bool) {
	p, ok := f.parents[child]
	return p, ok
}

// SingletonChild reports whether at most one child element occurs per
// parent.
func (f *DocFacts) SingletonChild(parent, child string) bool {
	return f.singleton[parent+"/"+child]
}

// RequiredChild reports whether at least one child occurs per parent.
func (f *DocFacts) RequiredChild(parent, child string) bool {
	return f.required[parent+"/"+child]
}

// SingletonPath reports whether the relative path (a chain of child steps
// such as "title" or "price") selects at most one node per context element.
// Attribute steps ("@year") are singletons by definition.
func (c *Catalog) SingletonPath(uri, contextElem, path string) bool {
	f, ok := c.docs[uri]
	if !ok {
		return false
	}
	cur := contextElem
	for _, step := range strings.Split(path, "/") {
		if step == "" {
			return false // descendant step: never provably singleton here
		}
		if strings.HasPrefix(step, "@") {
			return true
		}
		if !f.singleton[cur+"/"+step] {
			return false
		}
		cur = step
	}
	return true
}

// SameNodeSet decides whether two descendant paths over the same document
// denote the same node set. Paths are given as element-name chains where the
// first element is reached via //: "//author" vs "//book/author".
//
// The decision procedure handles the paper's cases: identical chains are
// equal; a chain that is a suffix-extension of the other is equal iff every
// element of the shorter chain's head can only occur under the corresponding
// elements of the longer chain (parent-fact closure). Anything else is
// conservatively rejected.
func (c *Catalog) SameNodeSet(uri, pathA, pathB string) bool {
	f, ok := c.docs[uri]
	if !ok {
		return false
	}
	a := splitChain(pathA)
	b := splitChain(pathB)
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	// Ensure a is the shorter chain.
	if len(a) > len(b) {
		a, b = b, a
	}
	// Last elements must agree, and b must end with a.
	if a[len(a)-1] != b[len(b)-1] {
		return false
	}
	for i := 0; i < len(a); i++ {
		if a[len(a)-1-i] != b[len(b)-1-i] {
			return false
		}
	}
	// Every instance of a's head must sit under the chain prefix of b:
	// walking up from a's head, the only possible parents must be the next
	// element of b's chain.
	cur := a[0]
	for i := len(b) - len(a) - 1; i >= 0; i-- {
		parents, known := f.parents[cur]
		if !known || len(parents) != 1 || !parents[b[i]] {
			return false
		}
		cur = b[i]
	}
	return true
}

// CoversAllValues reports whether the value set reached by pathA equals the
// one reached by pathB (used for the instance conditions of Eqvs. 3, 5, 8
// and 9). Node-set equality implies value-set equality.
func (c *Catalog) CoversAllValues(uri, pathA, pathB string) bool {
	return c.SameNodeSet(uri, pathA, pathB)
}

func splitChain(p string) []string {
	p = strings.TrimPrefix(p, "//")
	p = strings.TrimPrefix(p, "/")
	if p == "" {
		return nil
	}
	parts := strings.Split(p, "/")
	for _, s := range parts {
		if s == "" || strings.HasPrefix(s, "@") {
			return nil
		}
	}
	return parts
}

// UseCases returns a catalog pre-loaded with the DTDs of Fig. 5 (use cases
// XMP and R) and the DBLP-like DTD of the Sec. 5.1 experiment.
func UseCases() *Catalog {
	c := NewCatalog()

	bib := c.Doc("bib.xml")
	bib.Child("bib", "book", 0, -1)
	bib.Child("book", "title", 1, 1)
	bib.Child("book", "author", 0, -1)
	bib.Child("book", "editor", 0, -1)
	bib.Child("book", "publisher", 1, 1)
	bib.Child("book", "price", 1, 1)
	bib.Child("author", "last", 1, 1)
	bib.Child("author", "first", 1, 1)
	bib.Child("editor", "last", 1, 1)
	bib.Child("editor", "first", 1, 1)
	bib.Child("editor", "affiliation", 1, 1)
	bib.Attr("book", "year", true) // #REQUIRED in the use-case DTD

	reviews := c.Doc("reviews.xml")
	reviews.Child("reviews", "entry", 0, -1)
	reviews.Child("entry", "title", 1, 1)
	reviews.Child("entry", "price", 1, 1)
	reviews.Child("entry", "review", 1, 1)

	prices := c.Doc("prices.xml")
	prices.Child("prices", "book", 0, -1)
	prices.Child("book", "title", 1, 1)
	prices.Child("book", "source", 1, 1)
	prices.Child("book", "price", 1, 1)

	users := c.Doc("users.xml")
	users.Child("users", "usertuple", 0, -1)
	users.Child("usertuple", "userid", 1, 1)
	users.Child("usertuple", "name", 1, 1)
	users.Child("usertuple", "rating", 0, 1)

	items := c.Doc("items.xml")
	items.Child("items", "itemtuple", 0, -1)
	items.Child("itemtuple", "itemno", 1, 1)
	items.Child("itemtuple", "description", 1, 1)
	items.Child("itemtuple", "offered_by", 1, 1)
	items.Child("itemtuple", "startdate", 0, 1)
	items.Child("itemtuple", "enddate", 0, 1)
	items.Child("itemtuple", "reserveprice", 0, 1)

	bids := c.Doc("bids.xml")
	bids.Child("bids", "bidtuple", 0, -1)
	bids.Child("bidtuple", "userid", 1, 1)
	bids.Child("bidtuple", "itemno", 1, 1)
	bids.Child("bidtuple", "bid", 1, 1)
	bids.Child("bidtuple", "biddate", 1, 1)

	// DBLP: author elements occur under several publication kinds, so
	// //author ≠ //book/author — exactly the condition failure of Sec. 5.1.
	dblp := c.Doc("dblp.xml")
	for _, kind := range []string{"book", "article", "inproceedings", "phdthesis"} {
		dblp.Child("dblp", kind, 0, -1)
		dblp.Child(kind, "author", 1, -1)
		dblp.Child(kind, "title", 1, 1)
		dblp.Child(kind, "year", 1, 1)
	}
	dblp.Child("author", "last", 1, 1)
	dblp.Child("author", "first", 1, 1)

	return c
}
