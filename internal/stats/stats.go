// Package stats implements the document analyzer: one pre-order walk over a
// loaded document produces per-path measured statistics — element counts per
// root-to-node path, distinct-value counts and min/max for leaf text,
// average fanout, and document-order extents. The engine computes them at
// load time and stores them on its copy-on-write snapshot, the cost model
// consumes them instead of its hard-coded selectivity defaults, and
// internal/index builds its structural and value indexes from the same walk
// (see AnalyzeVisit).
//
// Paths are absolute, slash-separated root-to-node names: "/bib/book" for an
// element, "/bib/book/@year" for an attribute. Every node of a document has
// exactly one such path, so a path expression resolves to a set of measured
// paths (ResolvePaths) whose counts add up — the property the planner's
// index substitution and the path-aware cardinality estimates rely on.
package stats

import (
	"sort"
	"strconv"
	"strings"

	"nalquery/internal/dom"
	"nalquery/internal/xpath"
)

// PathStats is the measured profile of one absolute path.
type PathStats struct {
	// Path is the absolute root-to-node path ("/bib/book", "/bib/book/@year").
	Path string
	// Count is the number of nodes at this path.
	Count int64
	// AvgFanout is the average number of element children per node
	// (always 0 for attribute paths).
	AvgFanout float64
	// FirstOrder and LastOrder are the document-order extent of the path's
	// nodes (ranks of the first and last occurrence).
	FirstOrder, LastOrder int
	// Simple reports that every node at this path has leaf content only
	// (no element children; attribute paths are always simple). Only simple
	// paths carry the value statistics below and are value-indexable.
	Simple bool
	// Distinct is the number of distinct string values among the path's
	// nodes (0 unless Simple).
	Distinct int64
	// Min and Max are the lexicographically smallest and largest string
	// values (empty unless Simple and Count > 0).
	Min, Max string
	// AllNumeric reports that every value parses as a number; MinNum and
	// MaxNum are then the numeric extremes.
	AllNumeric     bool
	MinNum, MaxNum float64
}

// DocStats is the measured profile of one document.
type DocStats struct {
	// URI is the document's registered URI.
	URI string
	// Elements is the total element count of the document.
	Elements int64
	// Paths holds one entry per distinct absolute path, sorted by path.
	Paths []*PathStats

	byPath map[string]*PathStats
}

// Path returns the statistics of one absolute path, or nil.
func (s *DocStats) Path(p string) *PathStats { return s.byPath[p] }

// FromPaths reconstructs a DocStats from persisted per-path entries (the
// store's NALB2 record). Paths are re-sorted and the lookup map rebuilt.
func FromPaths(uri string, elements int64, paths []*PathStats) *DocStats {
	s := &DocStats{URI: uri, Elements: elements, Paths: paths,
		byPath: make(map[string]*PathStats, len(paths))}
	sort.Slice(s.Paths, func(i, j int) bool { return s.Paths[i].Path < s.Paths[j].Path })
	for _, p := range s.Paths {
		s.byPath[p.Path] = p
	}
	return s
}

// Visitor observes the analyzer's walk: VisitElem runs once per element and
// VisitAttr once per attribute, in document order, each with the node's
// absolute path. internal/index implements it to build path and value
// indexes from the same single walk that measures the statistics.
type Visitor interface {
	VisitElem(path string, n *dom.Node)
	VisitAttr(path string, n *dom.Node)
}

// Analyze walks a document once and measures its per-path statistics.
func Analyze(d *dom.Document) *DocStats { return AnalyzeVisit(d, nil) }

// Walk runs the analyzer's pre-order path walk with a visitor but without
// measuring: the index builder uses it when persisted statistics (a NALB2
// store record) make re-measuring redundant.
func Walk(d *dom.Document, v Visitor) {
	var walk func(n *dom.Node, prefix string)
	walk = func(n *dom.Node, prefix string) {
		for _, c := range n.Children {
			if c.Kind != dom.KindElement {
				continue
			}
			path := prefix + "/" + c.Name
			v.VisitElem(path, c)
			for _, at := range c.Attrs {
				v.VisitAttr(path+"/@"+at.Name, at)
			}
			walk(c, path)
		}
	}
	walk(d.Root, "")
}

// pathAcc is the per-path accumulator of one walk.
type pathAcc struct {
	st       *PathStats
	fanout   int64
	notLeaf  bool
	values   map[string]struct{}
	numeric  bool
	sawValue bool
}

// AnalyzeVisit is Analyze with a visitor observing every element and
// attribute as it is measured (nil behaves like Analyze).
func AnalyzeVisit(d *dom.Document, v Visitor) *DocStats {
	s := &DocStats{URI: d.URI, byPath: map[string]*PathStats{}}
	accs := map[string]*pathAcc{}
	acc := func(path string, n *dom.Node) *pathAcc {
		a := accs[path]
		if a == nil {
			a = &pathAcc{st: &PathStats{Path: path, FirstOrder: n.Order}, numeric: true}
			accs[path] = a
			s.byPath[path] = a.st
			s.Paths = append(s.Paths, a.st)
		}
		a.st.Count++
		a.st.LastOrder = n.Order
		return a
	}
	var walk func(n *dom.Node, prefix string)
	walk = func(n *dom.Node, prefix string) {
		for _, c := range n.Children {
			if c.Kind != dom.KindElement {
				continue
			}
			path := prefix + "/" + c.Name
			s.Elements++
			a := acc(path, c)
			if v != nil {
				v.VisitElem(path, c)
			}
			for _, at := range c.Attrs {
				apath := path + "/@" + at.Name
				aa := acc(apath, at)
				aa.value(at.Data)
				if v != nil {
					v.VisitAttr(apath, at)
				}
			}
			elemKids := int64(0)
			for _, cc := range c.Children {
				if cc.Kind == dom.KindElement {
					elemKids++
				}
			}
			a.fanout += elemKids
			if elemKids > 0 {
				a.notLeaf = true
			} else {
				a.value(c.StringValue())
			}
			walk(c, path)
		}
	}
	walk(d.Root, "")
	for _, a := range accs {
		if a.st.Count > 0 {
			a.st.AvgFanout = float64(a.fanout) / float64(a.st.Count)
		}
		a.st.Simple = !a.notLeaf
		if a.st.Simple && a.sawValue {
			a.st.Distinct = int64(len(a.values))
			a.st.AllNumeric = a.numeric
		} else {
			// Mixed structural/leaf occurrences: drop the value layer — a
			// value predicate over this path cannot be answered from leaf
			// text alone.
			a.st.Distinct, a.st.Min, a.st.Max = 0, "", ""
			a.st.AllNumeric, a.st.MinNum, a.st.MaxNum = false, 0, 0
		}
	}
	sort.Slice(s.Paths, func(i, j int) bool { return s.Paths[i].Path < s.Paths[j].Path })
	return s
}

// value folds one leaf string value into the accumulator.
func (a *pathAcc) value(val string) {
	if a.values == nil {
		a.values = map[string]struct{}{}
	}
	a.values[val] = struct{}{}
	if !a.sawValue || val < a.st.Min {
		a.st.Min = val
	}
	if !a.sawValue || val > a.st.Max {
		a.st.Max = val
	}
	if a.numeric {
		if f, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			if !a.sawValue || f < a.st.MinNum {
				a.st.MinNum = f
			}
			if !a.sawValue || f > a.st.MaxNum {
				a.st.MaxNum = f
			}
		} else {
			a.numeric = false
			a.st.MinNum, a.st.MaxNum = 0, 0
		}
	}
	a.sawValue = true
}

// ResolvePaths expands a path expression (evaluated from the document root)
// against the measured path set: it returns the absolute paths whose nodes
// the expression selects, in path order. ok is false when the expression
// carries a positional predicate — position depends on the context node's
// selection list, which the path set does not capture.
//
// The match replicates xpath.Path.Eval's axis semantics: child and attribute
// steps consume exactly one path segment, a descendant step consumes one or
// more (the name test applies to the last), and wildcard element tests never
// match attribute segments.
func (s *DocStats) ResolvePaths(p xpath.Path) ([]string, bool) {
	for _, st := range p.Steps {
		if st.Pos != 0 {
			return nil, false
		}
	}
	var out []string
	for _, ps := range s.Paths {
		if MatchPath(p, ps.Path) {
			out = append(out, ps.Path)
		}
	}
	return out, true
}

// SuffixCount sums the counts of measured paths the expression reaches from
// any context depth (the expression anchored by an implicit leading
// descendant step) — the path-aware cardinality the cost model uses for
// unnest-maps over relative paths. ok is false on positional predicates.
func (s *DocStats) SuffixCount(p xpath.Path) (float64, bool) {
	for _, st := range p.Steps {
		if st.Pos != 0 {
			return 0, false
		}
	}
	var n float64
	for _, ps := range s.Paths {
		segs := splitPath(ps.Path)
		for k := 0; k <= len(segs); k++ {
			if matchSteps(p.Steps, segs[k:]) {
				n += float64(ps.Count)
				break
			}
		}
	}
	return n, true
}

// MatchPath reports whether the expression, evaluated from the document
// root, selects the nodes at the given absolute path.
func MatchPath(p xpath.Path, abs string) bool {
	return matchSteps(p.Steps, splitPath(abs))
}

func splitPath(abs string) []string {
	return strings.Split(strings.TrimPrefix(abs, "/"), "/")
}

func matchSteps(steps []xpath.Step, segs []string) bool {
	if len(steps) == 0 {
		return len(segs) == 0
	}
	st := steps[0]
	switch st.Axis {
	case xpath.AxisChild:
		return len(segs) > 0 && segMatchElem(segs[0], st.Name) &&
			matchSteps(steps[1:], segs[1:])
	case xpath.AxisAttribute:
		return len(segs) > 0 && strings.HasPrefix(segs[0], "@") &&
			(st.Name == "" || segs[0][1:] == st.Name) &&
			matchSteps(steps[1:], segs[1:])
	case xpath.AxisDescendant:
		// Consume one or more segments; the name test applies to the last
		// consumed one (dom.Descendants excludes the context node itself).
		for k := 0; k < len(segs); k++ {
			if segMatchElem(segs[k], st.Name) && matchSteps(steps[1:], segs[k+1:]) {
				return true
			}
		}
	}
	return false
}

func segMatchElem(seg, name string) bool {
	if strings.HasPrefix(seg, "@") {
		return false
	}
	return name == "" || seg == name
}
