package stats

import (
	"strings"
	"testing"

	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

const testDoc = `<bib>
  <book year="2000"><title>B</title><author><last>L1</last></author><price>10.5</price></book>
  <book year="1999"><title>A</title><author><last>L2</last></author><author><last>L1</last></author><price>20</price></book>
  <book year="2000"><title>C</title><price>7</price></book>
</bib>`

func parse(t *testing.T, s string) *dom.Document {
	t.Helper()
	d, err := dom.Parse(strings.NewReader(s), "test.xml")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestAnalyzeCounts(t *testing.T) {
	s := Analyze(parse(t, testDoc))
	if s.Elements != 16 {
		t.Fatalf("elements = %d, want 16", s.Elements)
	}
	want := map[string]int64{
		"/bib":                  1,
		"/bib/book":             3,
		"/bib/book/@year":       3,
		"/bib/book/title":       3,
		"/bib/book/author":      3,
		"/bib/book/author/last": 3,
		"/bib/book/price":       3,
	}
	if len(s.Paths) != len(want) {
		t.Fatalf("got %d paths, want %d: %+v", len(s.Paths), len(want), s.Paths)
	}
	for p, n := range want {
		ps := s.Path(p)
		if ps == nil || ps.Count != n {
			t.Errorf("count(%s) = %+v, want %d", p, ps, n)
		}
	}
}

func TestAnalyzeValueLayer(t *testing.T) {
	s := Analyze(parse(t, testDoc))

	title := s.Path("/bib/book/title")
	if !title.Simple || title.Distinct != 3 || title.Min != "A" || title.Max != "C" {
		t.Fatalf("title stats: %+v", title)
	}
	if title.AllNumeric {
		t.Fatalf("title should not be numeric")
	}

	price := s.Path("/bib/book/price")
	if !price.AllNumeric || price.MinNum != 7 || price.MaxNum != 20 {
		t.Fatalf("price numeric stats: %+v", price)
	}

	year := s.Path("/bib/book/@year")
	if !year.Simple || year.Distinct != 2 || !year.AllNumeric {
		t.Fatalf("year stats: %+v", year)
	}

	// book has element children in every occurrence: structural, no values.
	book := s.Path("/bib/book")
	if book.Simple || book.Distinct != 0 || book.Min != "" {
		t.Fatalf("book should be structural: %+v", book)
	}
	if book.AvgFanout != 3 { // (3+4+2)/3 element children
		t.Fatalf("book fanout = %v", book.AvgFanout)
	}
}

// TestAnalyzeMixedContent: a path that is a leaf in one occurrence and
// structural in another carries no value layer.
func TestAnalyzeMixedContent(t *testing.T) {
	s := Analyze(parse(t, `<r><a>text</a><a><b>x</b></a></r>`))
	a := s.Path("/r/a")
	if a.Simple || a.Distinct != 0 {
		t.Fatalf("mixed path must drop the value layer: %+v", a)
	}
}

func TestDocOrderExtents(t *testing.T) {
	d := parse(t, testDoc)
	s := Analyze(d)
	book := s.Path("/bib/book")
	if book.FirstOrder >= book.LastOrder {
		t.Fatalf("extent: [%d, %d]", book.FirstOrder, book.LastOrder)
	}
	// The root's extent starts before every book.
	if s.Path("/bib").FirstOrder >= book.FirstOrder {
		t.Fatalf("root order %d not before first book %d", s.Path("/bib").FirstOrder, book.FirstOrder)
	}
}

// TestResolvePathsAgainstEval: for a corpus of path expressions, the summed
// counts of the resolved measured paths equal the node count xpath.Path.Eval
// selects from the document root — the partition property the planner's
// index substitution relies on.
func TestResolvePathsAgainstEval(t *testing.T) {
	doc := `<lib>
  <shelf><book year="1"><title>t1</title><note><title>n</title></note></book></shelf>
  <shelf><book year="2"><title>t2</title></book><journal><title>j</title></journal></shelf>
  <title>top</title>
</lib>`
	d := parse(t, doc)
	s := Analyze(d)
	exprs := []string{
		"/lib", "/lib/shelf", "/lib/shelf/book", "/lib/shelf/book/@year",
		"//title", "//book/title", "/lib//title", "//book//title",
		"//note", "/lib/*", "//*", "//shelf/*/title", "//@year",
		"/lib/missing", "//missing",
	}
	for _, e := range exprs {
		p := xpath.MustParse(e)
		paths, ok := s.ResolvePaths(p)
		if !ok {
			t.Fatalf("%s: not resolvable", e)
		}
		var sum int64
		for _, ap := range paths {
			sum += s.Path(ap).Count
		}
		got := len(p.Eval(value.NodeVal{Node: d.Root}))
		if int64(got) != sum {
			t.Errorf("%s: resolved count %d, Eval selects %d (paths %v)", e, sum, got, paths)
		}
	}
}

func TestResolvePathsPositional(t *testing.T) {
	s := Analyze(parse(t, testDoc))
	if _, ok := s.ResolvePaths(xpath.MustParse("/bib/book[1]")); ok {
		t.Fatalf("positional predicate must be unresolvable")
	}
}

func TestSuffixCount(t *testing.T) {
	s := Analyze(parse(t, testDoc))
	if n, ok := s.SuffixCount(xpath.MustParse("author")); !ok || n != 3 {
		t.Fatalf("SuffixCount(author) = %v, %v", n, ok)
	}
	if n, ok := s.SuffixCount(xpath.MustParse("author/last")); !ok || n != 3 {
		t.Fatalf("SuffixCount(author/last) = %v, %v", n, ok)
	}
	if n, ok := s.SuffixCount(xpath.MustParse("book/title")); !ok || n != 3 {
		t.Fatalf("SuffixCount(book/title) = %v, %v", n, ok)
	}
	if n, _ := s.SuffixCount(xpath.MustParse("nope")); n != 0 {
		t.Fatalf("SuffixCount(nope) = %v", n)
	}
}

// TestWalkMatchesAnalyze: the visitor-only Walk visits exactly the nodes
// AnalyzeVisit shows its visitor, in the same order.
func TestWalkMatchesAnalyze(t *testing.T) {
	d := parse(t, testDoc)
	var a, b []string
	rec := func(out *[]string) Visitor { return recorder{out} }
	AnalyzeVisit(d, rec(&a))
	Walk(d, rec(&b))
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("visit lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d: %q vs %q", i, a[i], b[i])
		}
	}
}

type recorder struct{ out *[]string }

func (r recorder) VisitElem(path string, n *dom.Node) { *r.out = append(*r.out, "e:"+path) }
func (r recorder) VisitAttr(path string, n *dom.Node) { *r.out = append(*r.out, "a:"+path) }

// TestFromPathsRoundtrip: reconstructing a DocStats from its path entries
// (the NALB2 load path) preserves lookups and ordering.
func TestFromPathsRoundtrip(t *testing.T) {
	s := Analyze(parse(t, testDoc))
	// Reverse the slice to prove FromPaths re-sorts.
	rev := make([]*PathStats, len(s.Paths))
	for i, p := range s.Paths {
		rev[len(rev)-1-i] = p
	}
	r := FromPaths(s.URI, s.Elements, rev)
	if r.Elements != s.Elements || len(r.Paths) != len(s.Paths) {
		t.Fatalf("roundtrip lost shape")
	}
	for i, p := range s.Paths {
		if r.Paths[i].Path != p.Path {
			t.Fatalf("order not restored at %d: %s vs %s", i, r.Paths[i].Path, p.Path)
		}
		if r.Path(p.Path) != p {
			t.Fatalf("lookup of %s broken", p.Path)
		}
	}
}
