// Package qgen is a seeded, grammar-based XQuery generator for the fuzzing
// and differential-testing harnesses. It produces queries over the synthetic
// use-case documents of internal/xmlgen (bib.xml, reviews.xml, prices.xml,
// users.xml, items.xml, bids.xml), covering the shapes the paper's
// translation and unnesting handle: FLWR nesting to configurable depth,
// existential and universal quantifiers, positional variables, order by,
// grouping and aggregation, and external-variable prologs.
//
// Generation is deterministic in the seed: New(Config{Seed: s}) produces the
// same query sequence on every run, so any crash or divergence reports as a
// one-line reproducer (seed + index). Not every generated query is inside
// the translator's subset — harnesses treat typed rejections as fine and
// panics or untyped errors as failures.
package qgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes a generator.
type Config struct {
	// Seed fixes the pseudo-random sequence.
	Seed int64
	// MaxDepth bounds FLWR nesting (quantifier ranges, nested queries in
	// let/return). 0 means the default of 3.
	MaxDepth int
	// Externals, when true, lets queries declare external variables in the
	// prolog; Query.Binds then carries values for them.
	Externals bool
}

// Query is one generated query: its text plus the bindings for any external
// variables it declares.
type Query struct {
	Text string
	// Binds maps declared external variable names to binding values; empty
	// when the query declares none.
	Binds map[string]any
}

// field is one child element (or attribute) of a document's tuple element.
type field struct {
	name    string
	attr    bool // @year
	numeric bool // values compare numerically (price, bid, itemno, @year)
	// sample values a comparison literal can draw from so predicates have a
	// real chance of selecting something.
	samples []string
}

// docSchema describes one use-case document: its URI, the repeating tuple
// element, and that element's fields.
type docSchema struct {
	uri  string
	elem string
	fs   []field
}

// schemas mirrors internal/xmlgen's generators. Sample literals match the
// value shapes xmlgen emits.
var schemas = []docSchema{
	{"bib.xml", "book", []field{
		{name: "title", samples: []string{"Title 1", "Title 7", "Data on the Web"}},
		{name: "author", samples: []string{"Author 3", "Suciu"}},
		{name: "publisher", samples: []string{"Publisher 1", "Publisher 5"}},
		{name: "price", numeric: true, samples: []string{"25.00", "49.99"}},
		{name: "year", attr: true, numeric: true, samples: []string{"1993", "1995", "2000"}},
	}},
	{"reviews.xml", "entry", []field{
		{name: "title", samples: []string{"Title 1", "Unlisted Title 3"}},
		{name: "price", numeric: true, samples: []string{"30.00", "55.50"}},
		{name: "review", samples: []string{"Review text 1"}},
	}},
	{"prices.xml", "book", []field{
		{name: "title", samples: []string{"Title 0", "Title 4"}},
		{name: "source", samples: []string{"source0.example.com", "source1.example.com"}},
		{name: "price", numeric: true, samples: []string{"20.00", "75.25"}},
	}},
	{"users.xml", "usertuple", []field{
		{name: "userid", samples: []string{"U01", "U05"}},
		{name: "name", samples: []string{"User Name 2"}},
		{name: "rating", samples: []string{"A", "C"}},
	}},
	{"items.xml", "itemtuple", []field{
		{name: "itemno", numeric: true, samples: []string{"1001", "1004"}},
		{name: "description", samples: []string{"Item description 2"}},
		{name: "offered_by", samples: []string{"U00", "U03"}},
	}},
	{"bids.xml", "bidtuple", []field{
		{name: "userid", samples: []string{"U02", "U07"}},
		{name: "itemno", numeric: true, samples: []string{"1000", "1002"}},
		{name: "bid", numeric: true, samples: []string{"50", "200"}},
		{name: "biddate", samples: []string{"1999-03-15"}},
	}},
}

// Gen generates queries. Not safe for concurrent use; give each goroutine
// its own Gen.
type Gen struct {
	r   *rand.Rand
	cfg Config

	// per-query state
	nvar      int
	externals []string
	binds     map[string]any
}

// New creates a generator.
func New(cfg Config) *Gen {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	return &Gen{r: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Query generates the next query in the seeded sequence.
func (g *Gen) Query() Query {
	g.nvar = 0
	g.externals = nil
	g.binds = map[string]any{}

	var body string
	switch g.r.Intn(8) {
	case 0:
		body = g.groupingQuery()
	case 1:
		body = g.aggregationQuery()
	case 2:
		body = g.quantifierQuery()
	case 3:
		body = g.havingCountQuery()
	case 4:
		body = g.joinQuery()
	default:
		body = g.flwr(g.cfg.MaxDepth)
	}
	var sb strings.Builder
	for _, e := range g.externals {
		fmt.Fprintf(&sb, "declare variable $%s external;\n", e)
	}
	sb.WriteString(body)
	return Query{Text: sb.String(), Binds: g.binds}
}

// fresh returns a fresh variable name.
func (g *Gen) fresh(prefix string) string {
	g.nvar++
	return fmt.Sprintf("%s%d", prefix, g.nvar)
}

func (g *Gen) schema() docSchema { return schemas[g.r.Intn(len(schemas))] }

func (g *Gen) pick(fs []field) field { return fs[g.r.Intn(len(fs))] }

// fieldStep renders a field as a path step ("title" or "@year").
func fieldStep(f field) string {
	if f.attr {
		return "@" + f.name
	}
	return f.name
}

// literal renders a comparison literal for the field: a sample value, an
// external variable (when enabled), or a fresh number for numeric fields.
func (g *Gen) literal(f field) string {
	if g.cfg.Externals && g.r.Intn(6) == 0 {
		name := g.fresh("ext")
		g.externals = append(g.externals, name)
		s := f.samples[g.r.Intn(len(f.samples))]
		if f.numeric {
			g.binds[name] = float64(g.r.Intn(2000))
		} else {
			g.binds[name] = s
		}
		return "$" + name
	}
	if f.numeric && g.r.Intn(2) == 0 {
		return fmt.Sprintf("%d", g.r.Intn(2000))
	}
	return `"` + f.samples[g.r.Intn(len(f.samples))] + `"`
}

func (g *Gen) cmpOp(numeric bool) string {
	if numeric {
		return []string{"=", "!=", "<", "<=", ">", ">="}[g.r.Intn(6)]
	}
	return []string{"=", "!="}[g.r.Intn(2)]
}

// docBind renders `let $d := doc("uri")` with a random doc spelling.
func (g *Gen) docBind(v string, s docSchema) string {
	fn := "doc"
	if g.r.Intn(4) == 0 {
		fn = "document"
	}
	return fmt.Sprintf("let $%s := %s(%q)", v, fn, s.uri)
}

// predicate renders a where-style condition over tuple variable $v of s,
// recursing into quantifiers and nested aggregates while depth allows.
func (g *Gen) predicate(v string, s docSchema, depth int) string {
	f := g.pick(s.fs)
	switch {
	case depth > 0 && g.r.Intn(5) == 0:
		return g.quantPred(v, s, depth-1)
	case depth > 0 && g.r.Intn(6) == 0:
		inner := g.countExpr(v, s, depth-1)
		return fmt.Sprintf("%s >= %d", inner, 1+g.r.Intn(3))
	case g.r.Intn(6) == 0:
		return fmt.Sprintf("contains($%s/%s, %s)", v, fieldStep(f), g.literal(f))
	case g.r.Intn(8) == 0:
		return fmt.Sprintf("exists($%s/%s)", v, fieldStep(f))
	case g.r.Intn(6) == 0:
		l := fmt.Sprintf("$%s/%s %s %s", v, fieldStep(f), g.cmpOp(f.numeric), g.literal(f))
		f2 := g.pick(s.fs)
		r := fmt.Sprintf("$%s/%s %s %s", v, fieldStep(f2), g.cmpOp(f2.numeric), g.literal(f2))
		op := "and"
		if g.r.Intn(2) == 0 {
			op = "or"
		}
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	default:
		return fmt.Sprintf("$%s/%s %s %s", v, fieldStep(f), g.cmpOp(f.numeric), g.literal(f))
	}
}

// quantPred renders an existential or universal quantifier whose range is a
// nested FLWR or a filtered path.
func (g *Gen) quantPred(outer string, outerS docSchema, depth int) string {
	kw := "some"
	if g.r.Intn(2) == 0 {
		kw = "every"
	}
	s := g.schema()
	qv := g.fresh("q")
	f := g.pick(s.fs)
	var rng string
	if g.r.Intn(2) == 0 {
		d := g.fresh("d")
		rng = fmt.Sprintf("(%s for $%s in $%s//%s/%s return $%s)",
			g.docBind(d, s), qv+"i", d, s.elem, fieldStep(f), qv+"i")
	} else {
		rng = fmt.Sprintf("doc(%q)//%s/%s", s.uri, s.elem, fieldStep(f))
	}
	of := g.pick(outerS.fs)
	sat := fmt.Sprintf("$%s = $%s/%s", qv, outer, fieldStep(of))
	if g.r.Intn(3) == 0 {
		sat = fmt.Sprintf("$%s %s %s", qv, g.cmpOp(f.numeric), g.literal(f))
	}
	return fmt.Sprintf("%s $%s in %s satisfies %s", kw, qv, rng, sat)
}

// countExpr renders count(...) over a nested range correlated with $v.
func (g *Gen) countExpr(v string, outerS docSchema, depth int) string {
	s := g.schema()
	f := g.pick(s.fs)
	of := g.pick(outerS.fs)
	if f.attr || of.attr {
		return fmt.Sprintf("count(doc(%q)//%s)", s.uri, s.elem)
	}
	return fmt.Sprintf("count(doc(%q)//%s[%s = $%s/%s])", s.uri, s.elem, f.name, v, fieldStep(of))
}

// returnExpr renders the return clause for tuple variable $v of s.
func (g *Gen) returnExpr(v string, s docSchema, depth int) string {
	f := g.pick(s.fs)
	switch g.r.Intn(5) {
	case 0:
		return "$" + v
	case 1:
		return fmt.Sprintf("$%s/%s", v, fieldStep(f))
	case 2:
		return fmt.Sprintf("<r>{ $%s/%s }</r>", v, fieldStep(f))
	case 3:
		f2 := g.pick(s.fs)
		return fmt.Sprintf("<r><a>{ $%s/%s }</a><b>{ $%s/%s }</b></r>",
			v, fieldStep(f), v, fieldStep(f2))
	default:
		if depth > 0 && g.r.Intn(2) == 0 {
			return fmt.Sprintf("<r>{ $%s/%s }{ %s }</r>", v, fieldStep(f), g.flwr(depth-1))
		}
		return fmt.Sprintf("<r>{ $%s/%s }</r>", v, fieldStep(f))
	}
}

// flwr renders a general FLWR expression, the grammar's workhorse.
func (g *Gen) flwr(depth int) string {
	s := g.schema()
	d := g.fresh("d")
	v := g.fresh("x")
	var sb strings.Builder
	sb.WriteString(g.docBind(d, s))
	sb.WriteString(" ")
	// for clause, optionally positional, optionally a second binding
	pos := ""
	if g.r.Intn(4) == 0 {
		pos = " at $" + g.fresh("p")
	}
	fmt.Fprintf(&sb, "for $%s%s in $%s//%s", v, pos, d, s.elem)
	var second string
	if g.r.Intn(4) == 0 {
		second = g.fresh("y")
		f := g.pick(s.fs)
		if !f.attr {
			fmt.Fprintf(&sb, ", $%s in $%s/%s", second, v, f.name)
		} else {
			second = ""
		}
	}
	sb.WriteString(" ")
	// optional let over a correlated nested query or a path
	if depth > 0 && g.r.Intn(3) == 0 {
		lv := g.fresh("l")
		inner := g.nestedSeq(v, s, depth-1)
		fmt.Fprintf(&sb, "let $%s := %s ", lv, inner)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "where count($%s) >= %d ", lv, g.r.Intn(3))
		}
	} else if g.r.Intn(3) == 0 {
		fmt.Fprintf(&sb, "where %s ", g.predicate(v, s, depth))
	}
	// optional order by
	if g.r.Intn(4) == 0 {
		f := g.pick(s.fs)
		dir := ""
		if g.r.Intn(2) == 0 {
			dir = " descending"
		}
		stable := ""
		if g.r.Intn(3) == 0 {
			stable = "stable "
		}
		fmt.Fprintf(&sb, "%sorder by $%s/%s%s ", stable, v, fieldStep(f), dir)
	}
	sb.WriteString("return ")
	if pos != "" && g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "<r n=\"{ $%s }\">{ $%s }</r>", strings.TrimPrefix(pos, " at $"), v)
	} else {
		sb.WriteString(g.returnExpr(v, s, depth))
	}
	return sb.String()
}

// nestedSeq renders a parenthesized nested FLWR correlated with outer $v.
func (g *Gen) nestedSeq(outer string, outerS docSchema, depth int) string {
	s := g.schema()
	d := g.fresh("d")
	iv := g.fresh("n")
	f := g.pick(s.fs)
	of := g.pick(outerS.fs)
	corr := ""
	if !f.attr && !of.attr && g.r.Intn(2) == 0 {
		corr = fmt.Sprintf("[%s = $%s/%s]", f.name, outer, fieldStep(of))
	}
	ret := "$" + iv
	if g.r.Intn(3) == 0 {
		ret = fmt.Sprintf("decimal($%s)", iv)
	}
	return fmt.Sprintf("(%s for $%s in $%s//%s%s/%s return %s)",
		g.docBind(d, s), iv, d, s.elem, corr, fieldStep(f), ret)
}

// groupingQuery renders the Q1 shape: group by a distinct field, nested
// query in the return.
func (g *Gen) groupingQuery() string {
	s := g.schema()
	f := g.pick(s.fs)
	for f.attr {
		f = g.pick(s.fs)
	}
	d1 := g.fresh("d")
	a := g.fresh("a")
	d2 := g.fresh("d")
	b := g.fresh("b")
	of := g.pick(s.fs)
	return fmt.Sprintf(`%s
for $%s in distinct-values($%s//%s)
return
  <group>
    <key> { $%s } </key>
    {
      %s
      for $%s in $%s//%s[$%s = %s]
      return $%s/%s
    }
  </group>`,
		g.docBind(d1, s), a, d1, f.name,
		a,
		g.docBind(d2, s), b, d2, s.elem, a, f.name,
		b, fieldStep(of))
}

// aggregationQuery renders the Q2 shape: nested aggregate per group key.
func (g *Gen) aggregationQuery() string {
	s := g.schema()
	var key, num field
	key = g.pick(s.fs)
	for key.attr {
		key = g.pick(s.fs)
	}
	num = key
	for _, f := range s.fs {
		if f.numeric && !f.attr {
			num = f
		}
	}
	agg := []string{"min", "max", "sum", "avg", "count"}[g.r.Intn(5)]
	d1, t, p, d2, p2 := g.fresh("d"), g.fresh("t"), g.fresh("p"), g.fresh("d"), g.fresh("q")
	return fmt.Sprintf(`%s
for $%s in distinct-values($%s//%s/%s)
let $%s := (%s
            for $%s in $%s//%s[%s = $%s]/%s
            return decimal($%s))
return
  <agg key="{ $%s }">
    <v> { %s($%s) } </v>
  </agg>`,
		g.docBind(d1, s), t, d1, s.elem, key.name,
		p, g.docBind(d2, s), p2, d2, s.elem, key.name, t, num.name, p2,
		t, agg, p)
}

// quantifierQuery renders the Q3/Q5 shape: quantified where clause.
func (g *Gen) quantifierQuery() string {
	s := g.schema()
	d := g.fresh("d")
	v := g.fresh("x")
	pred := g.quantPred(v, s, g.cfg.MaxDepth-1)
	f := g.pick(s.fs)
	return fmt.Sprintf(`%s
for $%s in $%s//%s
where %s
return <hit>{ $%s/%s }</hit>`,
		g.docBind(d, s), v, d, s.elem, pred, v, fieldStep(f))
}

// havingCountQuery renders the Q6 shape: aggregation in the where clause
// over distinct keys.
func (g *Gen) havingCountQuery() string {
	s := g.schema()
	key := g.pick(s.fs)
	for key.attr {
		key = g.pick(s.fs)
	}
	d := g.fresh("d")
	i := g.fresh("i")
	return fmt.Sprintf(`%s
for $%s in distinct-values($%s//%s)
where count($%s//%s[%s = $%s]) >= %d
return <popular>{ $%s }</popular>`,
		g.docBind(d, s), i, d, key.name,
		d, s.elem, key.name, i, 1+g.r.Intn(4), i)
}

// joinQuery renders a two-document value join, the Q4 flavor.
func (g *Gen) joinQuery() string {
	s1 := g.schema()
	s2 := g.schema()
	var f1, f2 field
	f1 = g.pick(s1.fs)
	for f1.attr {
		f1 = g.pick(s1.fs)
	}
	f2 = g.pick(s2.fs)
	for f2.attr {
		f2 = g.pick(s2.fs)
	}
	d1, d2, a, b := g.fresh("d"), g.fresh("d"), g.fresh("a"), g.fresh("b")
	return fmt.Sprintf(`%s
%s
for $%s in $%s//%s/%s
where some $%s in $%s//%s/%s satisfies $%s = $%s
return <j>{ $%s }</j>`,
		g.docBind(d1, s1), g.docBind(d2, s2),
		a, d1, s1.elem, f1.name,
		b, d2, s2.elem, f2.name, a, b,
		a)
}

// DocSizes returns a small xmlgen size suitable for differential sweeps:
// large enough that predicates select non-trivial subsets, small enough
// that hundreds of queries times several plans stay fast.
func DocSizes() (size, authorsPerBook int) { return 24, 2 }
