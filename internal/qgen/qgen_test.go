package qgen

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDeterministic: the same seed yields the same query sequence.
func TestDeterministic(t *testing.T) {
	a := New(Config{Seed: 7, Externals: true})
	b := New(Config{Seed: 7, Externals: true})
	for i := 0; i < 50; i++ {
		qa, qb := a.Query(), b.Query()
		if qa.Text != qb.Text {
			t.Fatalf("query %d diverged:\n%s\n---\n%s", i, qa.Text, qb.Text)
		}
		if len(qa.Binds) != len(qb.Binds) {
			t.Fatalf("query %d binds diverged", i)
		}
	}
}

// TestSeedsDiffer: different seeds yield different sequences.
func TestSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1})
	b := New(Config{Seed: 2})
	same := 0
	for i := 0; i < 20; i++ {
		if a.Query().Text == b.Query().Text {
			same++
		}
	}
	if same == 20 {
		t.Fatal("seeds 1 and 2 generated identical sequences")
	}
}

// TestShapeCoverage: over a few hundred queries the generator exercises
// every headline grammar feature.
func TestShapeCoverage(t *testing.T) {
	g := New(Config{Seed: 3, Externals: true})
	features := map[string]bool{}
	for i := 0; i < 400; i++ {
		q := g.Query()
		for feat, marker := range map[string]string{
			"quantifier-some":  "some $",
			"quantifier-every": "every $",
			"positional":       " at $",
			"order-by":         "order by",
			"grouping":         "distinct-values(",
			"aggregate":        "count(",
			"external":         "external;",
			"constructor":      "<r",
		} {
			if strings.Contains(q.Text, marker) {
				features[feat] = true
			}
		}
		if len(q.Binds) > 0 && !strings.Contains(q.Text, "external;") {
			t.Fatalf("query %d has binds but no prolog:\n%s", i, q.Text)
		}
	}
	for _, feat := range []string{"quantifier-some", "quantifier-every",
		"positional", "order-by", "grouping", "aggregate", "external", "constructor"} {
		if !features[feat] {
			t.Errorf("400 queries never produced feature %s", feat)
		}
	}
}

// TestMutateDeterministic: Mutate is deterministic in its rand source.
func TestMutateDeterministic(t *testing.T) {
	text := New(Config{Seed: 5}).Query().Text
	a := Mutate(rand.New(rand.NewSource(9)), text)
	b := Mutate(rand.New(rand.NewSource(9)), text)
	if a != b {
		t.Fatalf("mutation diverged:\n%s\n---\n%s", a, b)
	}
}

// TestMutateChanges: mutations usually alter the text.
func TestMutateChanges(t *testing.T) {
	g := New(Config{Seed: 11})
	r := rand.New(rand.NewSource(13))
	changed := 0
	for i := 0; i < 50; i++ {
		text := g.Query().Text
		if Mutate(r, text) != strings.Join(tokenize(text), " ") {
			changed++
		}
	}
	if changed < 40 {
		t.Fatalf("only %d/50 mutations changed the text", changed)
	}
}
