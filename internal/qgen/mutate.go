package qgen

import (
	"math/rand"
	"strings"
)

// tokenize splits query text into coarse tokens: runs of
// identifier/number characters, quoted strings (kept whole), and single
// punctuation bytes. Whitespace separates tokens and is dropped; Mutate
// re-joins with single spaces. The point is not XQuery lexical fidelity —
// it is producing corruptions that stress the parser near token
// boundaries instead of byte soup it rejects immediately.
func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"' || c == '\'':
			j := i + 1
			for j < len(s) && s[j] != c {
				j++
			}
			if j < len(s) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case isWord(c):
			j := i
			for j < len(s) && isWord(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	return toks
}

func isWord(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

// junk is the replacement pool token corruption draws from: keywords in
// wrong places, unterminated strings, deep parens, stray operators.
var junk = []string{
	"for", "let", "where", "return", "some", "every", "satisfies", "in",
	"order", "by", "declare", "variable", "external", "at", "if", "then",
	"else", "and", "or", "div", "mod", "$", "$$", "(", ")", "((", "))",
	"{", "}", "[", "]", "<", ">", "=", "!=", "<=", ">=", ",", ";", ":=",
	`"unterminated`, "'", "@", "/", "//", ".", "..", "0x", "1e", "-",
	"doc", "count", "distinct-values", "", "\x00", "\xff", "日本語",
}

// Mutate corrupts valid query text token-wise: it applies 1–3 random edits
// (delete, duplicate, swap, replace-with-junk, insert-junk, truncate) and
// returns the result. Deterministic in r. The output usually no longer
// parses — that is the point: the pipeline must reject it with a typed
// error, never a panic.
func Mutate(r *rand.Rand, text string) string {
	toks := tokenize(text)
	if len(toks) == 0 {
		return junk[r.Intn(len(junk))]
	}
	edits := 1 + r.Intn(3)
	for e := 0; e < edits && len(toks) > 0; e++ {
		i := r.Intn(len(toks))
		switch r.Intn(6) {
		case 0: // delete
			toks = append(toks[:i], toks[i+1:]...)
		case 1: // duplicate
			toks = append(toks[:i+1], toks[i:]...)
		case 2: // swap with neighbor
			j := (i + 1) % len(toks)
			toks[i], toks[j] = toks[j], toks[i]
		case 3: // replace with junk
			toks[i] = junk[r.Intn(len(junk))]
		case 4: // insert junk
			toks = append(toks[:i], append([]string{junk[r.Intn(len(junk))]}, toks[i:]...)...)
		case 5: // truncate
			toks = toks[:i]
		}
	}
	return strings.Join(toks, " ")
}
