package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAcquireUpToCap(t *testing.T) {
	c := New(3, 0)
	var rels []func()
	for i := 0; i < 3; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if got := c.Counters(); got.Active != 3 || got.Admitted != 3 {
		t.Fatalf("counters = %+v, want 3 active / 3 admitted", got)
	}
	// Queue bound 0: the fourth request sheds immediately.
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("over-cap acquire = %v, want ErrShed", err)
	}
	if got := c.Counters().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	rels[0]()
	if _, err := c.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(1, 0)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // double release must not free a phantom slot
	rel2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("second acquire = %v, want ErrShed (slot still held)", err)
	}
	if got := c.Counters().Active; got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := New(1, 2)
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(context.Background())
		if err == nil {
			defer rel2()
		}
		got <- err
	}()
	// The waiter is queued, not shed.
	deadline := time.After(2 * time.Second)
	for c.Counters().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire = %v, want admission after release", err)
	}
}

func TestQueueBoundSheds(t *testing.T) {
	c := New(1, 1)
	rel, _ := c.Acquire(context.Background())
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queuedErr := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		queuedErr <- err
	}()
	for c.Counters().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	// Queue is now full: the next request sheds at once.
	start := time.Now()
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("acquire with full queue = %v, want ErrShed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want prompt rejection", d)
	}
	cancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	if got := c.Counters().Expired; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
}

func TestQueuedWaiterDeadline(t *testing.T) {
	c := New(1, 4)
	rel, _ := c.Acquire(context.Background())
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter = %v, want DeadlineExceeded", err)
	}
}

func TestDrainRefusesAndUnblocksWaiters(t *testing.T) {
	c := New(1, 4)
	rel, _ := c.Acquire(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background())
		waiter <- err
	}()
	for c.Counters().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Drain()
	c.Drain() // idempotent
	if err := <-waiter; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter after Drain = %v, want ErrDraining", err)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("fresh acquire after Drain = %v, want ErrDraining", err)
	}
	// The in-flight holder still drains out; Wait observes it.
	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer wcancel()
	if err := c.Wait(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait with a holder = %v, want DeadlineExceeded", err)
	}
	rel()
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("Wait after release = %v", err)
	}
}

// TestConcurrentStress hammers the controller from many goroutines and
// checks the books balance: the in-flight bound is never exceeded and
// every decision is counted exactly once. Run under -race this is the
// package's data-race gate.
func TestConcurrentStress(t *testing.T) {
	const cap, queue, workers, rounds = 4, 8, 32, 50
	c := New(cap, queue)
	var inFlight, maxSeen atomic.Int64
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				rel, err := c.Acquire(ctx)
				if err != nil {
					rejected.Add(1)
					cancel()
					continue
				}
				n := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				inFlight.Add(-1)
				rel()
				ok.Add(1)
				cancel()
			}
		}()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > cap {
		t.Fatalf("observed %d concurrent holders, cap is %d", got, cap)
	}
	cnt := c.Counters()
	if cnt.Active != 0 || cnt.Queued != 0 {
		t.Fatalf("counters not drained: %+v", cnt)
	}
	if cnt.Admitted != ok.Load() {
		t.Fatalf("admitted = %d, released OK = %d", cnt.Admitted, ok.Load())
	}
	if cnt.Shed+cnt.Expired != rejected.Load() {
		t.Fatalf("shed %d + expired %d != rejections %d", cnt.Shed, cnt.Expired, rejected.Load())
	}
	if total := cnt.Admitted + cnt.Shed + cnt.Expired; total != workers*rounds {
		t.Fatalf("decisions %d != requests %d", total, workers*rounds)
	}
}
