// Package admission implements bounded-concurrency admission control for
// request-serving front ends: a fixed number of in-flight slots plus a
// bounded wait queue. A request either gets a slot (immediately or after
// queueing), is shed because the queue is full, expires while queued (its
// context fires), or is refused because the controller is draining.
//
// The point is graceful degradation: under overload the service answers
// every request promptly — admitted ones with results, excess ones with a
// cheap rejection — instead of stacking unbounded goroutines until the
// process collapses. Counters expose the control decisions so operators
// and load tests can see shedding happen.
package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShed reports that the wait queue was full: the request was rejected
// immediately so the caller can answer 429/Retry-After while the system
// keeps its concurrency bound.
var ErrShed = errors.New("admission: overloaded, request shed")

// ErrDraining reports that the controller has stopped admitting because
// the service is shutting down.
var ErrDraining = errors.New("admission: draining, not admitting")

// Controller is the admission gate. The zero value is unusable; construct
// with New. All methods are safe for concurrent use.
type Controller struct {
	slots    chan struct{} // buffered to the in-flight cap; a send holds a slot
	maxQueue int64
	drainCh  chan struct{} // closed by Drain, unblocking every queued waiter
	drainOnce sync.Once

	queued   atomic.Int64 // instantaneous waiters beyond the in-flight cap
	active   atomic.Int64 // instantaneous slot holders
	admitted atomic.Int64 // cumulative successful Acquires
	shed     atomic.Int64 // cumulative queue-full rejections
	expired  atomic.Int64 // cumulative context expiries while queued
	draining atomic.Bool
}

// New builds a controller admitting at most maxInFlight concurrent holders
// with at most maxQueue requests waiting beyond them. maxInFlight < 1 is
// raised to 1; maxQueue < 0 is treated as 0 (shed as soon as all slots are
// busy).
func New(maxInFlight, maxQueue int) *Controller {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Controller{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		drainCh:  make(chan struct{}),
	}
}

// Capacity returns the in-flight and queue bounds.
func (c *Controller) Capacity() (maxInFlight, maxQueue int) {
	return cap(c.slots), int(c.maxQueue)
}

// Acquire obtains an in-flight slot, waiting in the bounded queue if all
// slots are busy. On success it returns an idempotent release function the
// caller must invoke when the work is done. Otherwise it returns ErrShed
// (queue full), ErrDraining (controller draining), or the context's
// cancellation cause (deadline or cancel while queued).
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c.draining.Load() {
		return nil, ErrDraining
	}
	// Fast path: a free slot admits without touching the queue.
	select {
	case c.slots <- struct{}{}:
		return c.admit(), nil
	default:
	}
	if c.queued.Add(1) > c.maxQueue {
		c.queued.Add(-1)
		c.shed.Add(1)
		return nil, ErrShed
	}
	defer c.queued.Add(-1)
	select {
	case c.slots <- struct{}{}:
		// Drain may have started while we were queued; prefer refusing so
		// shutdown does not admit fresh work.
		if c.draining.Load() {
			<-c.slots
			return nil, ErrDraining
		}
		return c.admit(), nil
	case <-ctx.Done():
		c.expired.Add(1)
		return nil, context.Cause(ctx)
	case <-c.drainCh:
		return nil, ErrDraining
	}
}

// admit records a successful acquisition and builds its release closure.
func (c *Controller) admit() func() {
	c.active.Add(1)
	c.admitted.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			c.active.Add(-1)
			<-c.slots
		})
	}
}

// Drain permanently stops admitting: current and future Acquires — queued
// ones included — return ErrDraining, while already-admitted holders keep
// their slots until they release. Drain is idempotent.
func (c *Controller) Drain() {
	c.drainOnce.Do(func() {
		c.draining.Store(true)
		close(c.drainCh)
	})
}

// Draining reports whether Drain has been called.
func (c *Controller) Draining() bool { return c.draining.Load() }

// Wait blocks until no slot is held or ctx fires, returning nil on idle
// and the context's cancellation cause otherwise. It is the
// graceful-shutdown barrier: Drain, then Wait with the drain budget.
func (c *Controller) Wait(ctx context.Context) error {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		if c.active.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-t.C:
		}
	}
}

// Counters is a snapshot of the controller's admission statistics. Active
// and Queued are instantaneous; the rest are cumulative.
type Counters struct {
	Active   int64 `json:"active"`
	Queued   int64 `json:"queued"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
}

// Counters returns a snapshot of the admission statistics.
func (c *Controller) Counters() Counters {
	return Counters{
		Active:   c.active.Load(),
		Queued:   c.queued.Load(),
		Admitted: c.admitted.Load(),
		Shed:     c.shed.Load(),
		Expired:  c.expired.Load(),
	}
}
