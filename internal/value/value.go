// Package value defines the data model of the NAL algebra: atomic items,
// node handles, item sequences, tuples (sets of variable bindings) and
// ordered tuple sequences.
//
// NAL works "on sequences of sets of variable bindings, i.e., sequences of
// unordered tuples where every attribute corresponds to a variable" (Sec. 2).
// Attribute values may themselves be item sequences or tuple sequences
// (nested tuples).
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nalquery/internal/dom"
)

// Kind discriminates Value implementations.
type Kind uint8

// Value kinds.
const (
	KNull Kind = iota
	KBool
	KInt
	KFloat
	KString
	KNode
	KSeq      // sequence of items
	KTupleSeq // sequence of tuples (a nested, sequence-valued attribute)
)

// Value is any value an attribute can be bound to.
type Value interface {
	Kind() Kind
	// String renders the value for result construction (Ξ copies string
	// values onto the output stream).
	String() string
}

// Null is the NULL produced by the tuple constructor ⊥A of the left outer
// join.
type Null struct{}

// Bool is a boolean item.
type Bool bool

// Int is an integer item.
type Int int64

// Float is a floating point item (stands in for xs:decimal/xs:double).
type Float float64

// Str is a string item.
type Str string

// NodeVal is a handle to a node of a stored document.
type NodeVal struct{ Node *dom.Node }

// Seq is an ordered sequence of items.
type Seq []Value

// Kind implementations.
func (Null) Kind() Kind     { return KNull }
func (Bool) Kind() Kind     { return KBool }
func (Int) Kind() Kind      { return KInt }
func (Float) Kind() Kind    { return KFloat }
func (Str) Kind() Kind      { return KString }
func (NodeVal) Kind() Kind  { return KNode }
func (Seq) Kind() Kind      { return KSeq }
func (TupleSeq) Kind() Kind { return KTupleSeq }

func (Null) String() string { return "" }

func (b Bool) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	// Integral floats print without a fractional part, like XQuery decimals.
	if f == Float(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(float64(f), 'g', -1, 64)
}

func (s Str) String() string { return string(s) }

func (n NodeVal) String() string {
	if n.Node == nil {
		return ""
	}
	switch n.Node.Kind {
	case dom.KindAttribute, dom.KindText:
		return n.Node.Data
	default:
		return dom.XMLString(n.Node)
	}
}

func (s Seq) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return strings.Join(parts, " ")
}

// Tuple is a set of variable bindings. The map is the natural Go encoding of
// the paper's unordered tuples.
type Tuple map[string]Value

// TupleSeq is an ordered sequence of tuples — the carrier of every algebraic
// operator.
type TupleSeq []Tuple

func (ts TupleSeq) String() string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// String renders a tuple with sorted attribute names, for debugging and
// deterministic test output.
func (t Tuple) String() string {
	names := make([]string, 0, len(t))
	for k := range t {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteByte('[')
	for i, k := range names {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", k, renderValue(t[k]))
	}
	sb.WriteByte(']')
	return sb.String()
}

func renderValue(v Value) string {
	switch w := v.(type) {
	case nil:
		return "nil"
	case Null:
		return "NULL"
	case Str:
		return strconv.Quote(string(w))
	case TupleSeq:
		return w.String()
	case RowSeq:
		return w.String()
	default:
		return v.String()
	}
}

// EmptyTuple returns the tuple with no attributes — the single element
// produced by the □ operator.
func EmptyTuple() Tuple { return Tuple{} }

// EachValue calls fn with the tuple's attribute values in canonical
// (sorted-name) order — the order Ξ printing, atomization and AsSeq use for
// nested tuples. Single-attribute tuples (nested query results, e[a]
// bindings — the common case) skip the sort entirely.
func (t Tuple) EachValue(fn func(Value)) {
	if len(t) == 1 {
		for _, v := range t {
			fn(v)
		}
		return
	}
	for _, a := range t.Attrs() {
		fn(t[a])
	}
}

// Attrs returns the sorted attribute names of the tuple, i.e. A(t).
func (t Tuple) Attrs() []string {
	names := make([]string, 0, len(t))
	for k := range t {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Copy returns a shallow copy of the tuple.
func (t Tuple) Copy() Tuple {
	out := make(Tuple, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Concat implements tuple concatenation t ◦ u. Attributes of u win on
// collision (collisions never happen in well-formed plans, where attribute
// sets are disjoint).
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, len(t)+len(u))
	for k, v := range t {
		out[k] = v
	}
	for k, v := range u {
		out[k] = v
	}
	return out
}

// Project returns t restricted to the attributes in attrs (t|A). Missing
// attributes are silently skipped.
func (t Tuple) Project(attrs []string) Tuple {
	out := make(Tuple, len(attrs))
	for _, a := range attrs {
		if v, ok := t[a]; ok {
			out[a] = v
		}
	}
	return out
}

// Drop returns t without the attributes in attrs (the Π-bar operator).
func (t Tuple) Drop(attrs []string) Tuple {
	out := make(Tuple, len(t))
	for k, v := range t {
		out[k] = v
	}
	for _, a := range attrs {
		delete(out, a)
	}
	return out
}

// NullTuple implements the tuple constructor ⊥A: a tuple with every
// attribute in attrs bound to NULL.
func NullTuple(attrs []string) Tuple {
	out := make(Tuple, len(attrs))
	for _, a := range attrs {
		out[a] = Null{}
	}
	return out
}

// Copy returns a copy of the sequence (tuples shared).
func (ts TupleSeq) Copy() TupleSeq {
	out := make(TupleSeq, len(ts))
	copy(out, ts)
	return out
}

// BindSeq implements e[a]: turning a sequence of non-tuple values into a
// sequence of tuples with single attribute a.
func BindSeq(items Seq, a string) TupleSeq {
	out := make(TupleSeq, len(items))
	for i, v := range items {
		out[i] = Tuple{a: v}
	}
	return out
}

// AsSeq coerces a value to an item sequence: a Seq stays itself, a tuple
// sequence contributes its tuples' attribute values in order (the items a
// nested query block returns), any other item becomes a singleton, and Null
// becomes the empty sequence.
func AsSeq(v Value) Seq {
	switch w := v.(type) {
	case nil:
		return nil
	case Null:
		return nil
	case Seq:
		return w
	case TupleSeq:
		var out Seq
		for _, t := range w {
			t.EachValue(func(v Value) { out = append(out, AsSeq(v)...) })
		}
		return out
	case RowSeq:
		var out Seq
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(v Value) { out = append(out, AsSeq(v)...) })
		}
		return out
	default:
		return Seq{v}
	}
}

// NodeSeq wraps dom nodes as a value sequence.
func NodeSeq(nodes []*dom.Node) Seq {
	out := make(Seq, len(nodes))
	for i, n := range nodes {
		out[i] = NodeVal{Node: n}
	}
	return out
}
