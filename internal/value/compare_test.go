package value

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nalquery/internal/dom"
)

func TestCompareAtomicNumericPromotion(t *testing.T) {
	cases := []struct {
		a, b Value
		op   CmpOp
		want bool
	}{
		{Int(1), Int(2), CmpLt, true},
		{Int(2), Int(2), CmpEq, true},
		{Int(2), Int(2), CmpNe, false},
		{Str("10"), Int(9), CmpGt, true},      // numeric promotion: 10 > 9
		{Str("10"), Str("9"), CmpGt, true},    // both parse numerically
		{Str("abc"), Str("abd"), CmpLt, true}, // string comparison
		{Str("1994"), Int(1993), CmpGt, true}, // the Q5 @year comparison
		{Float(63.5), Float(65.95), CmpLt, true},
		{Str(" 42 "), Int(42), CmpEq, true}, // whitespace-trimmed numeric
	}
	for _, c := range cases {
		if got := CompareAtomic(c.a, c.b, c.op); got != c.want {
			t.Errorf("CompareAtomic(%v %s %v) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCompareWithNull(t *testing.T) {
	if CompareAtomic(Null{}, Int(1), CmpEq) || CompareAtomic(Int(1), Null{}, CmpLe) {
		t.Fatalf("comparisons against NULL must be false")
	}
}

func TestGeneralCompareExistential(t *testing.T) {
	// "a simple '=' has existential semantics in case either side contains a
	// sequence" (Sec. 5.1).
	seq := Seq{Str("x"), Str("y")}
	if !GeneralCompare(Str("y"), seq, CmpEq) {
		t.Fatalf("y = (x,y) must hold")
	}
	if GeneralCompare(Str("z"), seq, CmpEq) {
		t.Fatalf("z = (x,y) must not hold")
	}
	if GeneralCompare(Str("x"), Seq{}, CmpEq) {
		t.Fatalf("comparison with empty sequence must be false")
	}
	// Both sides sequences: any pair.
	if !GeneralCompare(Seq{Int(1), Int(5)}, Seq{Int(5), Int(9)}, CmpEq) {
		t.Fatalf("(1,5) = (5,9) must hold")
	}
}

func TestMemberOverTupleSeq(t *testing.T) {
	// The ∈ predicate of Eqvs. 4/5 ranges over e[a]-style tuple sequences.
	seq := TupleSeq{{"a'": Str("u")}, {"a'": Str("v")}}
	if !Member(Str("v"), seq) {
		t.Fatalf("v ∈ (u,v) must hold")
	}
	if Member(Str("w"), seq) {
		t.Fatalf("w ∈ (u,v) must not hold")
	}
}

func TestAtomizeNode(t *testing.T) {
	doc := dom.MustParseString(`<r><author><last>L</last><first>F</first></author></r>`, "t.xml")
	a := doc.RootElement().FirstChildElement("author")
	atoms := Atomize(NodeVal{Node: a})
	if len(atoms) != 1 || atoms[0].String() != "LF" {
		t.Fatalf("node atomization = %v", atoms)
	}
}

func TestNegateOp(t *testing.T) {
	pairs := map[CmpOp]CmpOp{
		CmpEq: CmpNe, CmpNe: CmpEq, CmpLt: CmpGe, CmpLe: CmpGt, CmpGt: CmpLe, CmpGe: CmpLt,
	}
	for op, want := range pairs {
		if got := op.Negate(); got != want {
			t.Errorf("¬%s = %s, want %s", op, got, want)
		}
	}
}

// TestNegationProperty: for atomic comparables, θ and ¬θ partition.
func TestNegationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Int(int64(rng.Intn(10)))
		b := Int(int64(rng.Intn(10)))
		op := CmpOp(rng.Intn(6))
		return CompareAtomic(a, b, op) != CompareAtomic(a, b, op.Negate())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	// Numeric values of different lexical forms share a key (consistent with
	// CompareAtomic equality).
	if Key(Str("1")) != Key(Int(1)) || Key(Str("1.0")) != Key(Float(1)) {
		t.Fatalf("numeric keys must coincide: %q %q", Key(Str("1")), Key(Int(1)))
	}
	if Key(Str("a")) == Key(Str("b")) {
		t.Fatalf("distinct strings must have distinct keys")
	}
	if Key(Null{}) == Key(Str("")) {
		t.Fatalf("NULL and empty string must differ")
	}
}

// TestKeyConsistentWithEquality: equal atoms have equal keys and unequal
// atoms (under CompareAtomic) have unequal keys.
func TestKeyConsistentWithEquality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := []Value{
			Int(int64(rng.Intn(5))),
			Float(float64(rng.Intn(5))),
			Str("s"), Str("t"), Bool(true),
		}
		a := vals[rng.Intn(len(vals))]
		b := vals[rng.Intn(len(vals))]
		return CompareAtomic(a, b, CmpEq) == (Key(a) == Key(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveBool(t *testing.T) {
	trues := []Value{Bool(true), Int(1), Float(0.5), Str("x"), Seq{Int(1)}, TupleSeq{{}}}
	falses := []Value{Bool(false), Int(0), Float(0), Str(""), Seq{}, TupleSeq{}, Null{}, nil}
	for _, v := range trues {
		if !EffectiveBool(v) {
			t.Errorf("EffectiveBool(%v) = false", v)
		}
	}
	for _, v := range falses {
		if EffectiveBool(v) {
			t.Errorf("EffectiveBool(%v) = true", v)
		}
	}
}

func TestDeepEqualCrossKindNumeric(t *testing.T) {
	if !DeepEqual(Int(3), Float(3)) || !DeepEqual(Float(3), Int(3)) {
		t.Fatalf("Int/Float numeric equality must hold")
	}
	if DeepEqual(Int(3), Str("3")) {
		t.Fatalf("Int and Str are distinct under DeepEqual")
	}
	a := TupleSeq{{"x": Seq{Int(1)}}}
	b := TupleSeq{{"x": Seq{Int(1)}}}
	if !DeepEqual(a, b) {
		t.Fatalf("structural equality fails")
	}
}
