package value

import (
	"sort"
	"strconv"
	"strings"
)

// Bag (multiset) comparison of tuple sequences: the correctness notion of
// the unordered algebra the paper builds on (the object-oriented algebra of
// Cluet/Moerkotte, refs. [9, 10]). An unordered operator is correct when its
// output is a permutation of the ordered operator's output.

// DeepKey renders a value as a canonical string such that two values compare
// DeepEqual exactly when their keys coincide. Numbers of any lexical form
// canonicalize (Int(3) and Float(3) share a key); tuples serialize in
// attribute-name order; node handles key on their document-order rank and
// name (unique within one document).
func DeepKey(v Value) string {
	var sb strings.Builder
	deepKey(v, &sb)
	return sb.String()
}

func deepKey(v Value, sb *strings.Builder) {
	switch w := v.(type) {
	case nil:
		sb.WriteString("_")
	case Null:
		sb.WriteString("0:")
	case Bool:
		sb.WriteString("b:")
		sb.WriteString(strconv.FormatBool(bool(w)))
	case Int:
		sb.WriteString("n:")
		sb.WriteString(strconv.FormatFloat(float64(w), 'g', -1, 64))
	case Float:
		sb.WriteString("n:")
		sb.WriteString(strconv.FormatFloat(float64(w), 'g', -1, 64))
	case Str:
		sb.WriteString("s:")
		sb.WriteString(strconv.Quote(string(w)))
	case NodeVal:
		sb.WriteString("N:")
		if w.Node != nil {
			sb.WriteString(strconv.Itoa(w.Node.Order))
			sb.WriteByte(':')
			sb.WriteString(w.Node.Name)
		}
	case Seq:
		sb.WriteString("[")
		for _, x := range w {
			deepKey(x, sb)
			sb.WriteByte(',')
		}
		sb.WriteString("]")
	case TupleSeq:
		sb.WriteString("{")
		for _, t := range w {
			tupleKey(t, sb)
			sb.WriteByte(',')
		}
		sb.WriteString("}")
	case RowSeq:
		// Identical rendering to the TupleSeq case for the same logical
		// members, so the two payload representations share a key space.
		sb.WriteString("{")
		for i := 0; i < w.Len(); i++ {
			rowMemberKey(w, i, sb)
			sb.WriteByte(',')
		}
		sb.WriteString("}")
	default:
		sb.WriteString("?:")
		sb.WriteString(v.String())
	}
}

// rowMemberKey renders member i of a row sequence exactly like tupleKey
// renders the equivalent map tuple: canonical attribute order, nil slots
// (absent attributes) skipped.
func rowMemberKey(rs RowSeq, i int, sb *strings.Builder) {
	r := rs.At(i)
	sb.WriteString("(")
	for _, s := range rs.Lay().Canon() {
		v := r.Vals[s]
		if v == nil {
			continue
		}
		sb.WriteString(rs.Lay().Name(s))
		sb.WriteByte('=')
		deepKey(v, sb)
		sb.WriteByte(';')
	}
	sb.WriteString(")")
}

func tupleKey(t Tuple, sb *strings.Builder) {
	attrs := t.Attrs()
	sort.Strings(attrs)
	sb.WriteString("(")
	for _, a := range attrs {
		sb.WriteString(a)
		sb.WriteByte('=')
		deepKey(t[a], sb)
		sb.WriteByte(';')
	}
	sb.WriteString(")")
}

// TupleSeqEqualBag reports whether two tuple sequences contain the same
// tuples with the same multiplicities, regardless of order.
func TupleSeqEqualBag(a, b TupleSeq) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, t := range a {
		var sb strings.Builder
		tupleKey(t, &sb)
		counts[sb.String()]++
	}
	for _, t := range b {
		var sb strings.Builder
		tupleKey(t, &sb)
		k := sb.String()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}
