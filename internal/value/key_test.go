package value

import (
	"math/rand"
	"testing"
)

// Properties of the composite HashKey scheme (KeyOfSlots / KeyOfAttrs /
// LessKey / Hash) the partitioned operators build on.

func randVal(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Int(int64(rng.Intn(5)))
	case 1:
		return Float(float64(rng.Intn(5)))
	case 2:
		return Str([]string{"a", "b", "3", " 3 ", ""}[rng.Intn(5)])
	case 3:
		return Null{}
	case 4:
		return Bool(rng.Intn(2) == 1)
	default:
		return nil
	}
}

// TestKeyOfSlotsMatchesPerColumnKeys: composite keys are equal exactly
// when every column's Key string is equal — at widths 1, 2 (inline
// composite) and 3 (string fold).
func TestKeyOfSlotsMatchesPerColumnKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for width := 1; width <= 3; width++ {
		slots := make([]int, width)
		for i := range slots {
			slots[i] = i
		}
		for iter := 0; iter < 2000; iter++ {
			a := make([]Value, width)
			b := make([]Value, width)
			for i := 0; i < width; i++ {
				a[i] = randVal(rng)
				b[i] = randVal(rng)
			}
			wantEq := true
			for i := 0; i < width; i++ {
				if Key(a[i]) != Key(b[i]) {
					wantEq = false
				}
			}
			gotEq := KeyOfSlots(a, slots) == KeyOfSlots(b, slots)
			if gotEq != wantEq {
				t.Fatalf("width %d: KeyOfSlots equality %v, per-column %v (%v vs %v)",
					width, gotEq, wantEq, a, b)
			}
		}
	}
}

// TestKeyOfAttrsAgreesWithKeyOfSlots: the map-tuple and slot-row forms of
// the same logical tuple key identically — the invariant that keeps the
// definitional evaluator and the slot engine in the same partition order.
func TestKeyOfAttrsAgreesWithKeyOfSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrs := []string{"a", "b", "c"}
	for width := 1; width <= 3; width++ {
		slots := make([]int, width)
		for i := range slots {
			slots[i] = i
		}
		for iter := 0; iter < 1000; iter++ {
			vals := make([]Value, width)
			tup := Tuple{}
			for i := 0; i < width; i++ {
				vals[i] = randVal(rng)
				if vals[i] != nil {
					tup[attrs[i]] = vals[i]
				}
			}
			if KeyOfSlots(vals, slots) != KeyOfAttrs(tup, attrs[:width]) {
				t.Fatalf("width %d: slot and attr keys disagree for %v", width, vals)
			}
		}
	}
}

// TestCompositeKeyNoCrossWidthCollision: a two-column key never equals a
// one-column key, even when the second column is NULL.
func TestCompositeKeyNoCrossWidthCollision(t *testing.T) {
	single := KeyOf(Int(1))
	composite := CombineKeys(KeyOf(Int(1)), KeyOf(nil))
	if single == composite {
		t.Fatalf("(1) and (1, NULL) collide")
	}
	if CombineKeys(KeyOf(Int(1)), KeyOf(Int(2))) == CombineKeys(KeyOf(Int(2)), KeyOf(Int(1))) {
		t.Fatalf("(1,2) and (2,1) collide")
	}
}

// TestLessKeyTotalOrder: LessKey is irreflexive, antisymmetric and total
// over distinct keys.
func TestLessKeyTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var keys []HashKey
	for i := 0; i < 200; i++ {
		a, b := randVal(rng), randVal(rng)
		keys = append(keys, KeyOf(a), CombineKeys(KeyOf(a), KeyOf(b)))
	}
	for _, x := range keys {
		if LessKey(x, x) {
			t.Fatalf("LessKey not irreflexive at %+v", x)
		}
		for _, y := range keys {
			lt, gt := LessKey(x, y), LessKey(y, x)
			if x == y && (lt || gt) {
				t.Fatalf("equal keys ordered: %+v", x)
			}
			if x != y && lt == gt {
				t.Fatalf("distinct keys not totally ordered: %+v vs %+v", x, y)
			}
		}
	}
}

// TestHashKeyHashEqualKeys: equal keys hash equally, and the hash spreads
// distinct keys (sanity, not a distribution proof).
func TestHashKeyHashEqualKeys(t *testing.T) {
	if KeyOf(Int(3)).Hash() != KeyOf(Str("3")).Hash() {
		t.Fatalf("numerically equal keys must hash equally")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[KeyOf(Int(int64(i))).Hash()] = true
	}
	if len(seen) < 32 {
		t.Fatalf("hash collapses: %d distinct hashes of 64 keys", len(seen))
	}
}
