package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randTupleSeq(rng *rand.Rand, n int) TupleSeq {
	ts := make(TupleSeq, n)
	for i := range ts {
		t := Tuple{}
		t["a"] = Int(int64(rng.Intn(4)))
		switch rng.Intn(4) {
		case 0:
			t["b"] = Str("x")
		case 1:
			t["b"] = Float(float64(rng.Intn(3)))
		case 2:
			t["b"] = Seq{Int(1), Str("y")}
		default:
			t["b"] = Null{}
		}
		ts[i] = t
	}
	return ts
}

// TestDeepKeyAgreesWithDeepEqual: equal keys ⇔ DeepEqual values, across the
// value kinds the engine produces.
func TestDeepKeyAgreesWithDeepEqual(t *testing.T) {
	vals := []Value{
		nil, Null{}, Bool(true), Bool(false),
		Int(3), Float(3), Float(3.5), Str("3"), Str("x"), Str(""),
		Seq{Int(1), Int(2)}, Seq{Int(2), Int(1)}, Seq{},
		TupleSeq{{"a": Int(1)}}, TupleSeq{{"a": Int(2)}},
	}
	for i, a := range vals {
		for j, b := range vals {
			keyEq := DeepKey(a) == DeepKey(b)
			deepEq := DeepEqual(a, b)
			if keyEq != deepEq {
				t.Errorf("vals[%d]=%v vals[%d]=%v: DeepKey equal=%v, DeepEqual=%v",
					i, a, j, b, keyEq, deepEq)
			}
		}
	}
}

// TestDeepKeyNumericCanon: Int and Float of the same number share a key
// (the comparison semantics of the engine).
func TestDeepKeyNumericCanon(t *testing.T) {
	if DeepKey(Int(7)) != DeepKey(Float(7)) {
		t.Errorf("Int(7) and Float(7) must share a key")
	}
	if DeepKey(Int(7)) == DeepKey(Str("7")) {
		t.Errorf("Int(7) and Str(\"7\") must not share a key (DeepEqual distinguishes them)")
	}
}

// TestBagEqualPermutation: every permutation of a sequence is bag-equal to
// it.
func TestBagEqualPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := randTupleSeq(rng, rng.Intn(12))
		perm := ts.Copy()
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return TupleSeqEqualBag(ts, perm)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestBagEqualMultiplicity: dropping or duplicating a tuple breaks bag
// equality.
func TestBagEqualMultiplicity(t *testing.T) {
	ts := TupleSeq{{"a": Int(1)}, {"a": Int(1)}, {"a": Int(2)}}
	if TupleSeqEqualBag(ts, ts[:2]) {
		t.Errorf("different lengths must not be bag-equal")
	}
	other := TupleSeq{{"a": Int(1)}, {"a": Int(2)}, {"a": Int(2)}}
	if TupleSeqEqualBag(ts, other) {
		t.Errorf("different multiplicities must not be bag-equal")
	}
	if !TupleSeqEqualBag(ts, TupleSeq{{"a": Int(2)}, {"a": Int(1)}, {"a": Int(1)}}) {
		t.Errorf("reordering must be bag-equal")
	}
}

// TestBagEqualEmpty: empty sequences are bag-equal.
func TestBagEqualEmpty(t *testing.T) {
	if !TupleSeqEqualBag(nil, TupleSeq{}) {
		t.Errorf("nil and empty must be bag-equal")
	}
}
