package value

import "sort"

// Layout is a compiled tuple schema: a fixed assignment of attribute names
// to slot indices, shared by every Row of one operator's output. Layouts are
// resolved once at plan time (see internal/algebra's schema resolver), so
// the per-tuple work of the iterator engine is slice indexing instead of map
// hashing. A Layout is immutable after construction.
type Layout struct {
	names []string
	index map[string]int
	canon []int // slots in sorted-name order (the canonical tuple order)
}

// NewLayout builds a layout over the given attribute names in slot order.
// Duplicate names are rejected (nil return): a well-formed operator scope
// binds every attribute once.
func NewLayout(names ...string) *Layout {
	l := &Layout{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := l.index[n]; dup {
			return nil
		}
		l.index[n] = i
	}
	// Already-sorted names (single attributes, SortedLayout — the common
	// case) share one identity slot order, keeping NewLayout at allocation
	// parity with the pre-canon revision on the plan-open path.
	sorted := true
	for i := 1; i < len(names); i++ {
		if l.names[i-1] > l.names[i] {
			sorted = false
			break
		}
	}
	if sorted && len(l.names) <= len(identSlots) {
		l.canon = identSlots[:len(l.names)]
		return l
	}
	l.canon = make([]int, len(l.names))
	for i := range l.canon {
		l.canon[i] = i
	}
	// Insertion sort by name: layouts are narrow, and this avoids the
	// reflection swapper sort.Slice allocates (NewLayout runs many times
	// during plan open).
	for i := 1; i < len(l.canon); i++ {
		for j := i; j > 0 && l.names[l.canon[j]] < l.names[l.canon[j-1]]; j-- {
			l.canon[j], l.canon[j-1] = l.canon[j-1], l.canon[j]
		}
	}
	return l
}

// identSlots is the shared identity slot order of sorted-name layouts.
var identSlots = func() []int {
	s := make([]int, 64)
	for i := range s {
		s[i] = i
	}
	return s
}()

// Canon returns the slots in canonical (sorted attribute name) order — the
// order map tuples enumerate their values in (Tuple.EachValue, Attrs). The
// slice is shared; do not mutate.
func (l *Layout) Canon() []int { return l.canon }

// SortedLayout builds a layout over the names in sorted order — the
// canonical layout for operators that only publish an attribute set.
func SortedLayout(names []string) *Layout {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return NewLayout(s...)
}

// Width returns the slot count.
func (l *Layout) Width() int { return len(l.names) }

// Names returns the attribute names in slot order. The slice is shared; do
// not mutate.
func (l *Layout) Names() []string { return l.names }

// Name returns the attribute name of a slot.
func (l *Layout) Name(slot int) string { return l.names[slot] }

// Slot returns the slot index of an attribute.
func (l *Layout) Slot(name string) (int, bool) {
	i, ok := l.index[name]
	return i, ok
}

// Has reports whether the layout binds the attribute.
func (l *Layout) Has(name string) bool {
	_, ok := l.index[name]
	return ok
}

// Concat returns the layout of tuple concatenation t ◦ u: l's slots followed
// by r's. It fails on a name collision — well-formed plans concatenate
// disjoint attribute sets, and a collision must fall back to map semantics
// (where the right side silently wins).
func (l *Layout) Concat(r *Layout) (*Layout, bool) {
	names := make([]string, 0, len(l.names)+len(r.names))
	names = append(names, l.names...)
	names = append(names, r.names...)
	nl := NewLayout(names...)
	return nl, nl != nil
}

// Extend returns a layout with name appended (or l itself when the name is
// already bound, matching χ's overwrite semantics) plus the slot of name.
func (l *Layout) Extend(name string) (*Layout, int) {
	if i, ok := l.index[name]; ok {
		return l, i
	}
	nl := NewLayout(append(append([]string(nil), l.names...), name)...)
	return nl, len(l.names)
}

// Drop returns the layout without the given attributes, plus for every kept
// output slot its source slot in l.
func (l *Layout) Drop(names []string) (*Layout, []int) {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var kept []string
	var src []int
	for i, n := range l.names {
		if !drop[n] {
			kept = append(kept, n)
			src = append(src, i)
		}
	}
	return NewLayout(kept...), src
}

// Project returns the layout of ΠA plus, per output slot, the source slot in
// l (-1 when l does not bind the attribute — the projection of a missing
// attribute yields an absent value, matching the map semantics).
func (l *Layout) Project(names []string) (*Layout, []int) {
	nl := NewLayout(names...)
	if nl == nil {
		return nil, nil
	}
	src := make([]int, len(names))
	for i, n := range names {
		if s, ok := l.index[n]; ok {
			src[i] = s
		} else {
			src[i] = -1
		}
	}
	return nl, src
}

// Rename returns the layout with old names replaced by new ones at the same
// slots — the O(1)-per-tuple form of ΠA′:A (rows keep their value slice and
// only swap the layout pointer). Pairs are applied against the original
// names, so rename chains and swaps (a→b, b→a) behave like simultaneous
// substitution. It fails (nil) when the result would bind a name twice.
func (l *Layout) Rename(pairs map[string]string) *Layout {
	names := make([]string, len(l.names))
	for i, n := range l.names {
		if nn, ok := pairs[n]; ok {
			names[i] = nn
		} else {
			names[i] = n
		}
	}
	return NewLayout(names...)
}

// Row is one tuple of the slot-based execution engine: a value slice indexed
// by the shared layout. Rows are immutable once emitted — operators that
// change values allocate a fresh slice, while pass-through operators (σ, Ξ)
// and pure renames share it.
type Row struct {
	Lay  *Layout
	Vals []Value
}

// NewRow allocates an empty row over the layout.
func NewRow(lay *Layout) Row {
	return Row{Lay: lay, Vals: make([]Value, lay.Width())}
}

// Value returns the value bound to an attribute name (nil when absent), the
// slow name-based accessor for boundaries and tests.
func (r Row) Value(name string) Value {
	if i, ok := r.Lay.Slot(name); ok {
		return r.Vals[i]
	}
	return nil
}

// Tuple converts the row to a map-based tuple for the API boundary. Slots
// holding nil (absent values) are omitted, matching the map engine where an
// unbound attribute is simply not a key.
func (r Row) Tuple() Tuple {
	t := make(Tuple, len(r.Vals))
	for i, v := range r.Vals {
		if v != nil {
			t[r.Lay.names[i]] = v
		}
	}
	return t
}

// RowFromTuple converts a map-based tuple into a row under the given layout.
// Attributes of t outside the layout are dropped; layout slots missing from
// t stay nil (absent).
func RowFromTuple(lay *Layout, t Tuple) Row {
	vals := make([]Value, lay.Width())
	for i, n := range lay.names {
		if v, ok := t[n]; ok {
			vals[i] = v
		}
	}
	return Row{Lay: lay, Vals: vals}
}

// ConcatRows implements t ◦ u over rows: one slice allocation, two copies.
// lay must be the Concat of the operands' layouts.
func ConcatRows(lay *Layout, l, r Row) Row {
	vals := make([]Value, len(l.Vals)+len(r.Vals))
	copy(vals, l.Vals)
	copy(vals[len(l.Vals):], r.Vals)
	return Row{Lay: lay, Vals: vals}
}

// MapSlots copies the source row through a slot mapping (as produced by
// Layout.Project / Layout.Drop): out slot i receives src slot src[i], or nil
// when src[i] < 0.
func MapSlots(lay *Layout, src []int, r Row) Row {
	vals := make([]Value, len(src))
	for i, s := range src {
		if s >= 0 {
			vals[i] = r.Vals[s]
		}
	}
	return Row{Lay: lay, Vals: vals}
}
