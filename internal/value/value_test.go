package value

import (
	"testing"

	"nalquery/internal/dom"
)

func TestTupleConcatProjectDrop(t *testing.T) {
	a := Tuple{"x": Int(1), "y": Str("s")}
	b := Tuple{"z": Float(2.5)}
	c := a.Concat(b)
	if len(c) != 3 || !DeepEqual(c["z"], Float(2.5)) {
		t.Fatalf("concat wrong: %s", c)
	}
	p := c.Project([]string{"x", "z"})
	if len(p) != 2 || !DeepEqual(p["x"], Int(1)) {
		t.Fatalf("project wrong: %s", p)
	}
	d := c.Drop([]string{"y"})
	if len(d) != 2 {
		t.Fatalf("drop wrong: %s", d)
	}
	if _, ok := d["y"]; ok {
		t.Fatalf("drop kept y")
	}
	// Originals untouched.
	if len(a) != 2 || len(b) != 1 {
		t.Fatalf("concat mutated inputs")
	}
}

func TestNullTuple(t *testing.T) {
	nt := NullTuple([]string{"a", "b"})
	if len(nt) != 2 {
		t.Fatalf("⊥ size %d", len(nt))
	}
	for _, v := range nt {
		if _, ok := v.(Null); !ok {
			t.Fatalf("⊥ attribute not NULL: %v", v)
		}
	}
}

func TestBindSeq(t *testing.T) {
	ts := BindSeq(Seq{Int(1), Int(2)}, "a")
	if len(ts) != 2 || !DeepEqual(ts[1]["a"], Int(2)) {
		t.Fatalf("e[a] wrong: %s", ts)
	}
	if len(BindSeq(nil, "a")) != 0 {
		t.Fatalf("e[a] of empty must be empty")
	}
}

func TestAsSeq(t *testing.T) {
	if got := AsSeq(Null{}); len(got) != 0 {
		t.Fatalf("AsSeq(NULL) = %v", got)
	}
	if got := AsSeq(Int(1)); len(got) != 1 {
		t.Fatalf("AsSeq(item) = %v", got)
	}
	if got := AsSeq(Seq{Int(1), Int(2)}); len(got) != 2 {
		t.Fatalf("AsSeq(seq) = %v", got)
	}
	ts := TupleSeq{{"a": Int(1)}, {"a": Seq{Int(2), Int(3)}}}
	if got := AsSeq(ts); len(got) != 3 {
		t.Fatalf("AsSeq(tupleseq) = %v", got)
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(42), "42"},
		{Float(42.5), "42.5"},
		{Str("x"), "x"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null{}, ""},
		{Seq{Int(1), Int(2)}, "1 2"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNodeValString(t *testing.T) {
	doc := dom.MustParseString(`<r><a>hi</a></r>`, "t.xml")
	a := doc.RootElement().FirstChildElement("a")
	nv := NodeVal{Node: a}
	if nv.String() != "<a>hi</a>" {
		t.Fatalf("element NodeVal serializes, got %q", nv.String())
	}
	txt := NodeVal{Node: a.Children[0]}
	if txt.String() != "hi" {
		t.Fatalf("text NodeVal is its data, got %q", txt.String())
	}
}

func TestTupleStringDeterministic(t *testing.T) {
	tp := Tuple{"b": Int(2), "a": Int(1)}
	if tp.String() != "[a: 1, b: 2]" {
		t.Fatalf("tuple string %q", tp.String())
	}
}
