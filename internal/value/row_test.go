package value

import (
	"testing"
)

func TestLayoutBasics(t *testing.T) {
	l := NewLayout("a", "b", "c")
	if l == nil || l.Width() != 3 {
		t.Fatalf("layout: %v", l)
	}
	if s, ok := l.Slot("b"); !ok || s != 1 {
		t.Fatalf("slot b: %d %v", s, ok)
	}
	if NewLayout("a", "a") != nil {
		t.Fatalf("duplicate names must be rejected")
	}
	sorted := SortedLayout([]string{"z", "a", "m"})
	if sorted.Name(0) != "a" || sorted.Name(2) != "z" {
		t.Fatalf("sorted layout order: %v", sorted.Names())
	}
}

func TestLayoutConcat(t *testing.T) {
	l := NewLayout("a", "b")
	r := NewLayout("c")
	cat, ok := l.Concat(r)
	if !ok || cat.Width() != 3 {
		t.Fatalf("concat: %v %v", cat, ok)
	}
	if s, _ := cat.Slot("c"); s != 2 {
		t.Fatalf("concat slot: %d", s)
	}
	if _, ok := l.Concat(NewLayout("b")); ok {
		t.Fatalf("colliding concat must fail")
	}
}

func TestLayoutRenameSwap(t *testing.T) {
	l := NewLayout("a", "b", "keep")
	nl := l.Rename(map[string]string{"a": "b", "b": "a"})
	if nl == nil {
		t.Fatalf("swap rename failed")
	}
	// Slots are preserved: the value at old a's slot is now named b.
	if s, _ := nl.Slot("b"); s != 0 {
		t.Fatalf("swap: b at slot %d", s)
	}
	if s, _ := nl.Slot("a"); s != 1 {
		t.Fatalf("swap: a at slot %d", s)
	}
	if s, _ := nl.Slot("keep"); s != 2 {
		t.Fatalf("swap: keep at slot %d", s)
	}
	// A rename that collides with an untouched attribute fails over to map
	// semantics.
	if l.Rename(map[string]string{"a": "keep"}) != nil {
		t.Fatalf("colliding rename must fail")
	}
}

func TestLayoutProjectDrop(t *testing.T) {
	l := NewLayout("a", "b", "c")
	pl, src := l.Project([]string{"c", "missing"})
	if pl.Width() != 2 || src[0] != 2 || src[1] != -1 {
		t.Fatalf("project mapping: %v %v", pl.Names(), src)
	}
	dl, dsrc := l.Drop([]string{"b"})
	if dl.Width() != 2 || dsrc[0] != 0 || dsrc[1] != 2 {
		t.Fatalf("drop mapping: %v %v", dl.Names(), dsrc)
	}
}

func TestRowTupleRoundTrip(t *testing.T) {
	lay := NewLayout("a", "b", "c")
	r := RowFromTuple(lay, Tuple{"a": Int(1), "c": Str("x")})
	if r.Vals[1] != nil {
		t.Fatalf("missing attr must stay nil")
	}
	back := r.Tuple()
	if len(back) != 2 || !DeepEqual(back["a"], Int(1)) || !DeepEqual(back["c"], Str("x")) {
		t.Fatalf("round trip: %s", back)
	}
	if got := r.Value("c"); !DeepEqual(got, Str("x")) {
		t.Fatalf("Value: %v", got)
	}
	if got := r.Value("nope"); got != nil {
		t.Fatalf("absent Value: %v", got)
	}
}

func TestConcatRows(t *testing.T) {
	l := NewLayout("a")
	r := NewLayout("b")
	cat, _ := l.Concat(r)
	out := ConcatRows(cat, RowFromTuple(l, Tuple{"a": Int(1)}), RowFromTuple(r, Tuple{"b": Int(2)}))
	if !DeepEqual(out.Value("a"), Int(1)) || !DeepEqual(out.Value("b"), Int(2)) {
		t.Fatalf("concat rows: %s", out.Tuple())
	}
}

func TestKeyOfMatchesKey(t *testing.T) {
	nan := Float(0)
	nan = Float(float64(nan) / float64(nan)) // NaN via arithmetic
	vals := []Value{
		nil, Null{}, Bool(true), Bool(false), Int(3), Float(3), Float(3.5),
		Str("3"), Str(" 3.0 "), Str("abc"), Str(""), Seq{}, Seq{Int(7)},
		Seq{Null{}, Str("x")}, TupleSeq{{"a": Int(1)}},
		nan, Str("NaN"), Str("inf"), Str("-Inf"), Str("Infinity"), Str("nanjing"),
		Float(negZero()), Str("-0"), Int(0),
	}
	for i, a := range vals {
		for j, b := range vals {
			sameStr := Key(a) == Key(b)
			sameKey := KeyOf(a) == KeyOf(b)
			if sameStr != sameKey {
				t.Errorf("KeyOf disagrees with Key for #%d vs #%d: %v/%v", i, j, sameStr, sameKey)
			}
		}
	}
}

// benchTuple/benchRow build equivalent 6-attribute inputs for the
// map-vs-slot comparison benchmarks.
func benchNames() []string { return []string{"a", "b", "c", "d", "e", "f"} }

func benchTuple() Tuple {
	t := Tuple{}
	for i, n := range benchNames() {
		t[n] = Int(int64(i))
	}
	return t
}

func benchRow() Row {
	lay := NewLayout(benchNames()...)
	return RowFromTuple(lay, benchTuple())
}

// BenchmarkRowConcat compares tuple concatenation t ◦ u: map rebuild vs one
// slice copy.
func BenchmarkRowConcat(b *testing.B) {
	t1, t2 := benchTuple(), benchTuple()
	r1 := benchRow()
	lay2 := NewLayout("g", "h", "i", "j", "k", "l")
	r2 := Row{Lay: lay2, Vals: r1.Vals}
	cat, _ := r1.Lay.Concat(lay2)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Concat with disjoint names, as a join would.
			u := make(Tuple, len(t1)+len(t2))
			for k, v := range t1 {
				u[k] = v
			}
			for k, v := range t2 {
				u["r"+k] = v
			}
			_ = u
		}
	})
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ConcatRows(cat, r1, r2)
		}
	})
}

// BenchmarkRowProject compares ΠA: map rebuild with hashing vs a slot copy.
func BenchmarkRowProject(b *testing.B) {
	t1 := benchTuple()
	r1 := benchRow()
	names := []string{"b", "d", "f"}
	pl, src := r1.Lay.Project(names)
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t1.Project(names)
		}
	})
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = MapSlots(pl, src, r1)
		}
	})
}

// negZero builds -0.0 without a constant expression (which Go folds to +0).
func negZero() float64 {
	z := 0.0
	return -z
}

// TestKeyNegativeZero pins the fold of -0 into +0 on both key forms: the
// comparison semantics treat them equal, so grouping must too.
func TestKeyNegativeZero(t *testing.T) {
	if Key(Float(negZero())) != Key(Float(0)) {
		t.Fatalf("Key(-0) %q != Key(0) %q", Key(Float(negZero())), Key(Float(0)))
	}
	if KeyOf(Float(negZero())) != KeyOf(Int(0)) {
		t.Fatalf("KeyOf(-0) != KeyOf(0)")
	}
}
