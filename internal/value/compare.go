package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CmpOp is a comparison operator θ ∈ {=, ≠, <, ≤, >, ≥} on atomic values.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the XQuery spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// Negate returns the complement operator (¬θ), used by Eqv. 7 where ∀ turns
// into an anti-join with the negated predicate.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	return op
}

// Atomize converts a value into its sequence of atomic items: nodes become
// their (untyped) string value, sequences atomize element-wise, Null yields
// the empty sequence.
func Atomize(v Value) Seq {
	switch w := v.(type) {
	case nil, Null:
		return nil
	case NodeVal:
		return Seq{Str(w.Node.StringValue())}
	case Seq:
		var out Seq
		for _, item := range w {
			out = append(out, Atomize(item)...)
		}
		return out
	case TupleSeq:
		// A sequence-valued attribute created by e[a] or Γ atomizes to the
		// atomized values of its tuples' attributes, in order.
		var out Seq
		for _, t := range w {
			t.EachValue(func(v Value) { out = append(out, Atomize(v)...) })
		}
		return out
	case RowSeq:
		var out Seq
		for i := 0; i < w.Len(); i++ {
			w.EachValue(i, func(v Value) { out = append(out, Atomize(v)...) })
		}
		return out
	default:
		return Seq{w}
	}
}

// AtomizeSingle atomizes and returns the single atomic item, or nil when the
// value atomizes to the empty sequence. Multi-item sequences return their
// first item (the use-case queries only apply this to singletons). Unlike
// Atomize it never materializes the sequence — it is on the per-tuple path
// of every comparison, sort and hash key.
func AtomizeSingle(v Value) Value {
	switch w := v.(type) {
	case nil, Null:
		return nil
	case NodeVal:
		return Str(w.Node.StringValue())
	case Seq:
		for _, item := range w {
			if a := AtomizeSingle(item); a != nil {
				return a
			}
		}
		return nil
	case TupleSeq:
		for _, t := range w {
			for _, a := range t.Attrs() {
				if x := AtomizeSingle(t[a]); x != nil {
					return x
				}
			}
		}
		return nil
	case RowSeq:
		for i := 0; i < w.Len(); i++ {
			r := w.At(i)
			for _, s := range w.Lay().Canon() {
				if v := r.Vals[s]; v != nil {
					if x := AtomizeSingle(v); x != nil {
						return x
					}
				}
			}
		}
		return nil
	default:
		return w
	}
}

type atom struct {
	isNum bool
	num   float64
	str   string
	// src defers string rendering of numeric atoms to the rare mixed
	// numeric-vs-string comparison, keeping the all-numeric path free of
	// the FormatInt/FormatFloat allocation.
	src Value
}

// text renders the atom for string comparison.
func (a atom) text() string {
	if a.isNum && a.str == "" && a.src != nil {
		return a.src.String()
	}
	return a.str
}

func toAtom(v Value) (atom, bool) {
	switch w := v.(type) {
	case nil, Null:
		return atom{}, false
	case Bool:
		if bool(w) {
			return atom{isNum: true, num: 1, str: "true"}, true
		}
		return atom{isNum: true, num: 0, str: "false"}, true
	case Int:
		return atom{isNum: true, num: float64(w), src: v}, true
	case Float:
		return atom{isNum: true, num: float64(w), src: v}, true
	case Str:
		s := string(w)
		if t := strings.TrimSpace(s); looksNumeric(t) {
			if f, err := strconv.ParseFloat(t, 64); err == nil {
				return atom{isNum: true, num: f, str: s}, true
			}
		}
		return atom{str: s}, true
	case NodeVal:
		return toAtom(Str(w.Node.StringValue()))
	default:
		return atom{}, false
	}
}

// looksNumeric cheaply rejects strings that cannot parse as numbers, so the
// untyped-comparison path does not pay strconv's allocated error for every
// non-numeric string. It admits everything strconv.ParseFloat accepts,
// including the Inf/NaN spellings.
func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	switch c := s[0]; {
	case c == '-' || c == '+' || c == '.' || ('0' <= c && c <= '9'):
		return true
	case c == 'i' || c == 'I' || c == 'n' || c == 'N':
		return strings.EqualFold(s, "inf") || strings.EqualFold(s, "infinity") ||
			strings.EqualFold(s, "nan")
	default:
		return false
	}
}

// CompareAtomic applies θ to two atomic (or node) values. Untyped values
// compare numerically when both sides parse as numbers, else as strings.
// It reports false when either side is absent (NULL/empty).
func CompareAtomic(a, b Value, op CmpOp) bool {
	x, okx := toAtom(a)
	y, oky := toAtom(b)
	if !okx || !oky {
		return false
	}
	var c int
	if x.isNum && y.isNum {
		switch {
		case x.num < y.num:
			c = -1
		case x.num > y.num:
			c = 1
		}
	} else {
		c = strings.Compare(x.text(), y.text())
	}
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// Compare3 three-way-compares two already-atomized values under
// CompareAtomic's semantics (numeric when both sides parse as numbers, else
// string), with absent (nil/NULL) values ordered first — the single-parse
// comparison the sort operators use.
func Compare3(a, b Value) int {
	x, okx := toAtom(a)
	y, oky := toAtom(b)
	switch {
	case !okx && !oky:
		return 0
	case !okx:
		return -1
	case !oky:
		return 1
	}
	if x.isNum && y.isNum {
		switch {
		case x.num < y.num:
			return -1
		case x.num > y.num:
			return 1
		}
		return 0
	}
	return strings.Compare(x.text(), y.text())
}

// GeneralCompare implements XQuery general comparison semantics: it holds if
// some pair of atomized items from the two operands satisfies θ. This is the
// "simple '=' has existential semantics" rule of Sec. 5.1. Item-vs-item
// comparisons (the common case on the compiled predicate path) bypass
// sequence materialization entirely.
func GeneralCompare(a, b Value, op CmpOp) bool {
	if isItem(a) && isItem(b) {
		return CompareAtomic(a, b, op)
	}
	xs := Atomize(a)
	ys := Atomize(b)
	for _, x := range xs {
		for _, y := range ys {
			if CompareAtomic(x, y, op) {
				return true
			}
		}
	}
	return false
}

// isItem reports whether a value atomizes to exactly the sequence the
// single-item comparison path assumes: everything except the sequence kinds
// (Seq flattens, TupleSeq contributes per attribute).
func isItem(v Value) bool {
	switch v.(type) {
	case Seq, TupleSeq, RowSeq:
		return false
	default:
		return true
	}
}

// Member reports whether item a1 is a member of the atomized sequence bound
// to v (the a1 ∈ a2 predicate of Eqvs. 4 and 5).
func Member(a Value, v Value) bool {
	return GeneralCompare(a, v, CmpEq)
}

// Key returns a canonical grouping/join key for a value under the comparison
// semantics of CompareAtomic: numeric values of any lexical form coincide.
// Empty/NULL values map to a distinguished key.
func Key(v Value) string {
	a := AtomizeSingle(v)
	if a == nil {
		return "\x00null"
	}
	at, ok := toAtom(a)
	if !ok {
		return "\x00null"
	}
	if at.isNum {
		n := at.num
		if n == 0 {
			n = 0 // fold -0 into +0, as CompareAtomic and KeyOf do
		}
		return "n:" + strconv.FormatFloat(n, 'g', -1, 64)
	}
	return "s:" + at.str
}

// HashKey is the allocation-free form of Key: a comparable struct usable as
// a Go map key. KeyOf(a) == KeyOf(b) exactly when Key(a) == Key(b).
//
// A HashKey carries up to two columns inline (the second column's fields
// are zero for single-column keys; kind2 is tagged so a two-column key
// never collides with a one-column key). Keys wider than two columns fold
// into a single length-prefixed string — see KeyOfSlots.
type HashKey struct {
	kind byte // 0 null, 'n' numeric, 'N' NaN, 's' string, 'm' multi-column fold
	num  float64
	str  string
	// second column of a composite key (CombineKeys); zero when absent
	kind2 byte
	num2  float64
	str2  string
}

// numKey folds every NaN into one key: NaN != NaN would otherwise make a
// struct key that never matches itself, while Key() renders all NaNs as the
// same "n:NaN" string.
func numKey(f float64) HashKey {
	if f != f {
		return HashKey{kind: 'N'}
	}
	if f == 0 {
		f = 0 // fold -0 into +0, matching CompareAtomic's f == 0 semantics
	}
	return HashKey{kind: 'n', num: f}
}

// FoldKey wraps a pre-folded multi-column key string.
func FoldKey(s string) HashKey { return HashKey{kind: 'm', str: s} }

// compositeTag marks the second column of a two-column composite key:
// kind2 is never zero for a composite, so (x, NULL) cannot collide with
// the single-column key x.
const compositeTag = 0x80

// CombineKeys packs two single-column keys into one composite HashKey
// without allocating — the two-column join/grouping key. Both operands
// must be single-column KeyOf results (not composites or folds).
func CombineKeys(a, b HashKey) HashKey {
	a.kind2 = b.kind | compositeTag
	a.num2 = b.num
	a.str2 = b.str
	return a
}

// KeyOfSlots computes the canonical composite grouping/join key of the
// values at the given slots — the multi-column extension of KeyOf, used by
// every partitioned operator of the slot engine. One- and two-column keys
// are allocation-free; wider keys fold the per-column Key strings into one
// length-prefixed string (no separator collisions).
func KeyOfSlots(vals []Value, slots []int) HashKey {
	switch len(slots) {
	case 0:
		return HashKey{}
	case 1:
		return KeyOf(vals[slots[0]])
	case 2:
		return CombineKeys(KeyOf(vals[slots[0]]), KeyOf(vals[slots[1]]))
	}
	var sb strings.Builder
	for _, s := range slots {
		writeFoldCol(&sb, vals[s])
	}
	return FoldKey(sb.String())
}

// KeyOfAttrs is KeyOfSlots for map tuples. Both functions produce the same
// key for the same logical tuple — the invariant the partitioned operators
// rely on when the map evaluator and the slot engine must agree on
// partition order.
func KeyOfAttrs(t Tuple, attrs []string) HashKey {
	switch len(attrs) {
	case 0:
		return HashKey{}
	case 1:
		return KeyOf(t[attrs[0]])
	case 2:
		return CombineKeys(KeyOf(t[attrs[0]]), KeyOf(t[attrs[1]]))
	}
	var sb strings.Builder
	for _, a := range attrs {
		writeFoldCol(&sb, t[a])
	}
	return FoldKey(sb.String())
}

func writeFoldCol(sb *strings.Builder, v Value) {
	k := Key(v)
	sb.WriteString(strconv.Itoa(len(k)))
	sb.WriteByte(':')
	sb.WriteString(k)
}

// LessKey is a deterministic total order on hash keys — the canonical
// partition order of the unordered operator family and the Grace join (any
// fixed order demonstrates the same effects; this one never allocates). It
// is a structural order, unrelated to the value order of CompareAtomic.
func LessKey(a, b HashKey) bool { return CmpKey(a, b) < 0 }

// CmpKey is the three-way form of LessKey, for slices.SortFunc. The num
// fields are never NaN (numKey folds every NaN into the distinguished
// kind 'N'), so the != / < probes below form a consistent total order.
func CmpKey(a, b HashKey) int {
	switch {
	case a.kind != b.kind:
		return int(a.kind) - int(b.kind)
	case a.num != b.num:
		if a.num < b.num {
			return -1
		}
		return 1
	case a.str != b.str:
		return strings.Compare(a.str, b.str)
	case a.kind2 != b.kind2:
		return int(a.kind2) - int(b.kind2)
	case a.num2 != b.num2:
		if a.num2 < b.num2 {
			return -1
		}
		return 1
	default:
		return strings.Compare(a.str2, b.str2)
	}
}

// Hash returns a well-distributed 64-bit FNV-1a hash of the key for
// partition assignment (the Grace-style partitioning of OPHashJoin). Equal
// keys hash equally; unequal keys may collide — partitioning tolerates
// collisions, map lookups must keep using the HashKey itself.
func (k HashKey) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(v))
			v >>= 8
		}
	}
	mix(k.kind)
	mix64(math.Float64bits(k.num))
	for i := 0; i < len(k.str); i++ {
		mix(k.str[i])
	}
	mix(k.kind2)
	mix64(math.Float64bits(k.num2))
	for i := 0; i < len(k.str2); i++ {
		mix(k.str2[i])
	}
	return h
}

// KeyOf computes the canonical grouping/join key of a value without
// allocating: the hot path of every hash join, grouping and distinct
// operator in the slot engine.
func KeyOf(v Value) HashKey {
	switch w := v.(type) {
	case nil, Null:
		return HashKey{}
	case Bool:
		if bool(w) {
			return HashKey{kind: 'n', num: 1}
		}
		return HashKey{kind: 'n', num: 0}
	case Int:
		return numKey(float64(w))
	case Float:
		return numKey(float64(w))
	case Str:
		return keyOfString(string(w))
	case NodeVal:
		return keyOfString(w.Node.StringValue())
	default:
		a := AtomizeSingle(v)
		if a == nil {
			return HashKey{}
		}
		return KeyOf(a)
	}
}

func keyOfString(s string) HashKey {
	if t := strings.TrimSpace(s); looksNumeric(t) {
		if f, err := strconv.ParseFloat(t, 64); err == nil {
			return numKey(f)
		}
	}
	return HashKey{kind: 's', str: s}
}

// EffectiveBool computes an effective boolean value: false for NULL, empty
// sequences, false, 0 and ""; true otherwise. Node handles are true
// (existence).
func EffectiveBool(v Value) bool {
	switch w := v.(type) {
	case nil, Null:
		return false
	case Bool:
		return bool(w)
	case Int:
		return w != 0
	case Float:
		return w != 0
	case Str:
		return w != ""
	case NodeVal:
		return true
	case Seq:
		return len(w) > 0
	case TupleSeq:
		return len(w) > 0
	case RowSeq:
		return w.Len() > 0
	default:
		return false
	}
}

// DeepEqual compares two values structurally, with numeric cross-kind
// equality (Int(3) equals Float(3)). Used by tests and by the property-based
// equivalence checks.
func DeepEqual(a, b Value) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case Null:
		_, ok := b.(Null)
		return ok
	case Seq:
		y, ok := b.(Seq)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !DeepEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case TupleSeq:
		switch y := b.(type) {
		case TupleSeq:
			return TupleSeqEqual(x, y)
		case RowSeq:
			// A slot-engine group payload equals the map engine's when the
			// member tuples coincide — the representations are interchangeable.
			return rowSeqEqualTupleSeq(y, x)
		}
		return false
	case RowSeq:
		switch y := b.(type) {
		case TupleSeq:
			return rowSeqEqualTupleSeq(x, y)
		case RowSeq:
			if x.Len() != y.Len() {
				return false
			}
			for i := 0; i < x.Len(); i++ {
				if !rowEqualRow(x.At(i), y.At(i)) {
					return false
				}
			}
			return true
		}
		return false
	case NodeVal:
		y, ok := b.(NodeVal)
		return ok && x.Node == y.Node
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Int:
		switch y := b.(type) {
		case Int:
			return x == y
		case Float:
			return float64(x) == float64(y)
		}
		return false
	case Float:
		switch y := b.(type) {
		case Int:
			return float64(x) == float64(y)
		case Float:
			return x == y
		}
		return false
	default:
		return false
	}
}

// rowSeqEqualTupleSeq compares a slot-backed sequence with a map-backed one
// member-wise.
func rowSeqEqualTupleSeq(a RowSeq, b TupleSeq) bool {
	if a.Len() != len(b) {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !rowEqualTuple(a.At(i), b[i]) {
			return false
		}
	}
	return true
}

// rowEqualTuple compares one row with one map tuple: every non-nil slot must
// match an attribute of t, and t must bind nothing else (nil slots are
// absent attributes, like missing map keys).
func rowEqualTuple(r Row, t Tuple) bool {
	present := 0
	for i, v := range r.Vals {
		if v == nil {
			continue
		}
		present++
		w, ok := t[r.Lay.Name(i)]
		if !ok || !DeepEqual(v, w) {
			return false
		}
	}
	return present == len(t)
}

// rowEqualRow compares two rows by attribute-name semantics without
// materializing map tuples: every present (non-nil) slot of a must match
// the same-named binding of b, and b must bind nothing else.
func rowEqualRow(a, b Row) bool {
	present := 0
	for i, v := range a.Vals {
		if v == nil {
			continue
		}
		present++
		w := b.Value(a.Lay.Name(i))
		if w == nil || !DeepEqual(v, w) {
			return false
		}
	}
	for _, v := range b.Vals {
		if v != nil {
			present--
		}
	}
	return present == 0
}

// TupleEqual compares two tuples attribute-wise with DeepEqual.
func TupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !DeepEqual(v, w) {
			return false
		}
	}
	return true
}

// TupleSeqEqual compares two ordered tuple sequences.
func TupleSeqEqual(a, b TupleSeq) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !TupleEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}
