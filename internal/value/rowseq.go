package value

import "strings"

// RowSeq is the slot-native tuple sequence: the group payloads created by Γ,
// the e[a] constructor and nested query blocks, carried as rows over one
// shared Layout instead of a slice of map tuples. It implements Value with
// the same Kind as TupleSeq (the logical data model is unchanged — only the
// representation is), and every consumer of tuple-sequence values
// (atomization, printing, comparison, µ/µD) reads it without converting.
// Map tuples materialize from a RowSeq only at the public API and the
// differential-test boundary (Tuples).
//
// Two backings share the type:
//
//   - chunked ([]Row): a zero-copy wrap of rows an operator already
//     materialized — the Γ bucket slices. Appending a group attribute costs
//     one interface box, no per-member work.
//   - flat ([]Value): width·n values in one allocation — the backing built
//     by e[a] bindings and ΠA payload projection, where members are
//     constructed rather than inherited.
//
// Like Row, a RowSeq is immutable once emitted. A rename inside the group
// is WithLayout — a layout-pointer swap sharing both backings.
type RowSeq struct {
	lay  *Layout
	rows []Row   // chunked backing (nil when flat)
	flat []Value // flat backing, stride lay.Width()
	n    int
}

// WrapRows wraps already-materialized rows as a sequence value without
// copying. The rows must share lay's attribute names (their own layout
// pointers may differ, e.g. after a rename; lay wins).
func WrapRows(lay *Layout, rows []Row) RowSeq {
	return RowSeq{lay: lay, rows: rows, n: len(rows)}
}

// RowSeqOfFlat wraps a flat backing of n·lay.Width() values.
func RowSeqOfFlat(lay *Layout, flat []Value) RowSeq {
	n := 0
	if w := lay.Width(); w > 0 {
		n = len(flat) / w
	}
	return RowSeq{lay: lay, flat: flat, n: n}
}

// BindRowSeq is the slot-native e[a] constructor: a sequence of
// single-attribute rows sharing the item sequence as their flat backing —
// zero per-item work instead of one map per item.
func BindRowSeq(items Seq, a string) RowSeq {
	return BindRowSeqLay(NewLayout(a), items)
}

// BindRowSeqLay is BindRowSeq with a caller-cached single-attribute layout
// (the compiled path builds it once per plan, not once per tuple). The item
// slice is aliased, not copied — values are immutable throughout the
// engine, and a width-1 flat backing is exactly an item sequence.
func BindRowSeqLay(lay *Layout, items Seq) RowSeq {
	return RowSeq{lay: lay, flat: items, n: len(items)}
}

// Kind implements Value. A RowSeq is a tuple sequence; only the
// representation differs.
func (rs RowSeq) Kind() Kind { return KTupleSeq }

// Lay returns the shared member layout.
func (rs RowSeq) Lay() *Layout { return rs.lay }

// Len returns the member count.
func (rs RowSeq) Len() int { return rs.n }

// At returns member i as a Row under the sequence's layout. Flat backings
// slice; chunked backings re-point the member's value slice at the
// sequence layout (which carries any rename applied after wrapping).
func (rs RowSeq) At(i int) Row {
	if rs.rows != nil {
		return Row{Lay: rs.lay, Vals: rs.rows[i].Vals}
	}
	w := rs.lay.Width()
	off := i * w
	return Row{Lay: rs.lay, Vals: rs.flat[off : off+w : off+w]}
}

// WithLayout returns the sequence under a different layout of the same
// width — the O(1) form of a rename applied to every member.
func (rs RowSeq) WithLayout(lay *Layout) RowSeq {
	out := rs
	out.lay = lay
	return out
}

// Tuples materializes the members as map tuples — the public API /
// differential-test boundary. Inside the engine, callers count this
// conversion (Stats.MapTuples) instead of calling it.
func (rs RowSeq) Tuples() TupleSeq {
	out := make(TupleSeq, rs.n)
	for i := 0; i < rs.n; i++ {
		out[i] = rs.At(i).Tuple()
	}
	return out
}

// EachValue calls fn with member i's attribute values in canonical
// (sorted-name) order, skipping absent (nil) slots — the order Ξ printing,
// atomization and AsSeq use, matching Tuple.EachValue.
func (rs RowSeq) EachValue(i int, fn func(Value)) {
	r := rs.At(i)
	for _, s := range rs.lay.Canon() {
		if v := r.Vals[s]; v != nil {
			fn(v)
		}
	}
}

func (rs RowSeq) String() string {
	parts := make([]string, rs.n)
	for i := 0; i < rs.n; i++ {
		parts[i] = rs.At(i).Tuple().String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// KeyOfRow computes the canonical grouping key of a row over its present
// (non-nil) attributes in canonical order — producing the same HashKey as
// KeyOfAttrs(t, t.Attrs()) for the equivalent map tuple (the µD member-dedup
// key). scratch is reused across members to avoid a per-member allocation;
// the (possibly regrown) slice is returned.
func KeyOfRow(r Row, scratch []int) (HashKey, []int) {
	scratch = scratch[:0]
	for _, s := range r.Lay.Canon() {
		if r.Vals[s] != nil {
			scratch = append(scratch, s)
		}
	}
	return KeyOfSlots(r.Vals, scratch), scratch
}

// TuplesOf views a tuple-sequence value through the map-tuple lens: a
// TupleSeq stays itself, a RowSeq materializes. ok=false for any other
// value. The definitional evaluator uses it where slot-engine payloads can
// reach map-engine operators (mixed plans, environment shims).
func TuplesOf(v Value) (TupleSeq, bool) {
	switch w := v.(type) {
	case TupleSeq:
		return w, true
	case RowSeq:
		return w.Tuples(), true
	default:
		return nil, false
	}
}
