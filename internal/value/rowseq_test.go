package value

import "testing"

// The RowSeq/TupleSeq contract: the two representations of one logical
// tuple sequence are indistinguishable to every observer — DeepEqual,
// DeepKey, atomization, effective boolean value — including members with
// absent attributes (nil slots vs missing map keys).

func testSeqPair() (RowSeq, TupleSeq) {
	lay := NewLayout("b", "a") // slot order ≠ canonical order
	rows := []Row{
		{Lay: lay, Vals: []Value{Str("x"), Int(1)}},
		{Lay: lay, Vals: []Value{nil, Int(2)}}, // b absent
	}
	ts := TupleSeq{
		{"a": Int(1), "b": Str("x")},
		{"a": Int(2)},
	}
	return WrapRows(lay, rows), ts
}

func TestRowSeqDeepEqualAcrossRepresentations(t *testing.T) {
	rs, ts := testSeqPair()
	if !DeepEqual(rs, ts) || !DeepEqual(ts, rs) {
		t.Fatalf("RowSeq and TupleSeq of the same members must be DeepEqual")
	}
	other := TupleSeq{{"a": Int(1), "b": Str("x")}, {"a": Int(2), "b": Null{}}}
	if DeepEqual(rs, other) {
		t.Fatalf("absent attribute must not equal NULL binding")
	}
}

func TestRowSeqDeepKeyMatchesTupleSeq(t *testing.T) {
	rs, ts := testSeqPair()
	if DeepKey(rs) != DeepKey(ts) {
		t.Fatalf("DeepKey differs:\nrow:   %s\ntuple: %s", DeepKey(rs), DeepKey(ts))
	}
}

func TestRowSeqAtomizeCanonicalOrder(t *testing.T) {
	rs, ts := testSeqPair()
	if !DeepEqual(Atomize(rs), Atomize(ts)) {
		t.Fatalf("atomization differs: %v vs %v", Atomize(rs), Atomize(ts))
	}
	if AtomizeSingle(rs) == nil || !DeepEqual(AtomizeSingle(rs), AtomizeSingle(ts)) {
		t.Fatalf("AtomizeSingle differs")
	}
}

func TestRowSeqRenameIsLayoutSwap(t *testing.T) {
	rs, _ := testSeqPair()
	ren := rs.Lay().Rename(map[string]string{"a": "z"})
	swapped := rs.WithLayout(ren)
	if got := swapped.At(0).Value("z"); !DeepEqual(got, Int(1)) {
		t.Fatalf("renamed member reads %v, want 1", got)
	}
	// The backing is shared: same member value slices.
	if &rs.At(0).Vals[0] != &swapped.At(0).Vals[0] {
		t.Fatalf("rename must not copy member values")
	}
}

func TestBindRowSeqSharesBacking(t *testing.T) {
	items := Seq{Int(1), Str("two")}
	rs := BindRowSeq(items, "x")
	if rs.Len() != 2 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if &items[0] != &rs.At(0).Vals[0] {
		t.Fatalf("e[a] backing must alias the item sequence")
	}
	if !DeepEqual(rs, TupleSeq{{"x": Int(1)}, {"x": Str("two")}}) {
		t.Fatalf("BindRowSeq members differ from BindSeq semantics")
	}
}

func TestKeyOfRowMatchesKeyOfAttrs(t *testing.T) {
	lay := NewLayout("c", "a", "b")
	r := Row{Lay: lay, Vals: []Value{Str("v"), nil, Int(7)}} // a absent
	tup := Tuple{"b": Int(7), "c": Str("v")}
	k1, _ := KeyOfRow(r, nil)
	if k2 := KeyOfAttrs(tup, tup.Attrs()); k1 != k2 {
		t.Fatalf("KeyOfRow %v != KeyOfAttrs %v", k1, k2)
	}
}

func TestRowSeqEffectiveBoolAndEmpty(t *testing.T) {
	lay := NewLayout("a")
	empty := WrapRows(lay, nil)
	if EffectiveBool(empty) {
		t.Fatalf("empty RowSeq must be false")
	}
	if !DeepEqual(empty, TupleSeq{}) {
		t.Fatalf("empty RowSeq must equal empty TupleSeq")
	}
}
