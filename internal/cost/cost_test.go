package cost

import (
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/core"
	"nalquery/internal/dom"
	"nalquery/internal/normalize"
	"nalquery/internal/schema"
	"nalquery/internal/translate"
	"nalquery/internal/value"
	"nalquery/internal/xmlgen"
	"nalquery/internal/xpath"
	"nalquery/internal/xquery"
)

func modelFor(t *testing.T, size int) (*Model, map[string]*dom.Document) {
	t.Helper()
	cfg := xmlgen.DefaultConfig(size)
	docs := map[string]*dom.Document{
		"bib.xml":  xmlgen.Bib(cfg),
		"bids.xml": xmlgen.Bids(cfg),
	}
	return NewModel(docs), docs
}

func plansFor(t *testing.T, src string) []core.PlanAlt {
	t.Helper()
	cat := schema.UseCases()
	ast, err := xquery.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(normalize.NormalizeWithCatalog(ast, cat), cat)
	if err != nil {
		t.Fatal(err)
	}
	rw := core.NewRewriter(res, cat)
	return rw.Alternatives(res.Plan)
}

const q1Src = `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return <author><name>{ $a1 }</name>
  { let $d2 := doc("bib.xml")
    for $b2 in $d2//book[$a1 = author]
    return $b2/title }</author>`

func TestNestedPlanCostsMost(t *testing.T) {
	m, _ := modelFor(t, 500)
	alts := plansFor(t, q1Src)
	var nested, best float64
	for _, a := range alts {
		c := m.Plan(a.Op).Cost
		if c <= 0 {
			t.Fatalf("non-positive cost for %s", a.Name)
		}
		if a.Name == "nested" {
			nested = c
		} else if best == 0 || c < best {
			best = c
		}
	}
	if nested < best*10 {
		t.Fatalf("nested plan must dominate: nested=%g best-unnested=%g", nested, best)
	}
}

func TestCostGrowsWithDocuments(t *testing.T) {
	mSmall, _ := modelFor(t, 100)
	mLarge, _ := modelFor(t, 1000)
	alts := plansFor(t, q1Src)
	for _, a := range alts {
		small := mSmall.Plan(a.Op).Cost
		large := mLarge.Plan(a.Op).Cost
		if large <= small {
			t.Errorf("%s: cost must grow with data: %g vs %g", a.Name, small, large)
		}
		if a.Name == "nested" && large < small*50 {
			t.Errorf("nested cost must grow superlinearly: %g vs %g", small, large)
		}
	}
}

func TestCardinalityFromStats(t *testing.T) {
	m, _ := modelFor(t, 200)
	// Υ over //book should estimate the document's book count.
	plan := algebra.UnnestMap{
		In:   algebra.Map{In: algebra.Singleton{}, Attr: "d", E: algebra.Doc{URI: "bib.xml"}},
		Attr: "b",
		E:    algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//book")},
	}
	est := m.Plan(plan)
	if est.Card < 150 || est.Card > 250 {
		t.Fatalf("book cardinality estimate off: %g", est.Card)
	}
}

func TestScanVariantCostsMore(t *testing.T) {
	m, _ := modelFor(t, 200)
	e1 := algebra.Project{In: algebra.Singleton{}, Names: nil}
	mk := func(force bool) algebra.Op {
		return algebra.GroupBinary{
			L: algebra.UnnestMap{In: algebra.Map{In: algebra.Singleton{}, Attr: "d", E: algebra.Doc{URI: "bids.xml"}},
				Attr: "i1", E: algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//itemno")}},
			R: algebra.UnnestMap{In: algebra.Map{In: algebra.Singleton{}, Attr: "d2", E: algebra.Doc{URI: "bids.xml"}},
				Attr: "i2", E: algebra.PathOf{Input: algebra.Var{Name: "d2"}, Path: xpath.MustParse("//itemno")}},
			G: "g", LAttrs: []string{"i1"}, RAttrs: []string{"i2"},
			Theta: value.CmpEq, F: algebra.SFCount{}, ForceScan: force,
		}
	}
	_ = e1
	hash := m.Plan(mk(false)).Cost
	scan := m.Plan(mk(true)).Cost
	if scan <= hash {
		t.Fatalf("scan grouping must cost more: hash=%g scan=%g", hash, scan)
	}
}

func TestUnknownOperatorFallback(t *testing.T) {
	m, _ := modelFor(t, 50)
	est := m.Plan(algebra.Sort{In: algebra.Singleton{}, By: []string{"x"}})
	if est.Cost <= 0 || est.Card <= 0 {
		t.Fatalf("fallback estimate: %+v", est)
	}
}
