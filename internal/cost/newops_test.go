package cost

import (
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/value"
	"nalquery/internal/xmlgen"
)

// constLeaf is a schema-known leaf for cost estimation.
type constLeaf struct{ attrs []string }

func (c constLeaf) Eval(*algebra.Ctx, value.Tuple) value.TupleSeq { return nil }
func (c constLeaf) String() string                                { return "leaf" }
func (c constLeaf) Children() []algebra.Op                        { return nil }
func (c constLeaf) Exprs() []algebra.Expr                         { return nil }
func (c constLeaf) Attrs() ([]string, bool)                       { return c.attrs, true }

// newOpsModel builds a model over real generated documents, so scan
// cardinalities are large enough to separate linear from quadratic costs.
func newOpsModel() *Model {
	cfg := xmlgen.DefaultConfig(500)
	return NewModel(map[string]*dom.Document{
		"bib.xml":   xmlgen.Bib(cfg),
		"bids.xml":  xmlgen.Bids(cfg),
		"items.xml": xmlgen.Items(cfg),
	})
}

// TestNewOpsEstimated: the physical variants get finite, child-aware
// estimates, and hash-family joins cost less than the quadratic
// cross-product they replace.
func TestNewOpsEstimated(t *testing.T) {
	m := newOpsModel()
	l := constLeaf{attrs: []string{"A1"}}
	r := constLeaf{attrs: []string{"A2"}}
	eq := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
	cross := m.Plan(algebra.Select{In: algebra.Cross{L: scanOp("bib.xml", "//book", "x"), R: scanOp("bib.xml", "//book", "x")}, Pred: eq})
	ops := []algebra.Op{
		algebra.OPHashJoin{L: scanOp("bib.xml", "//book", "x"), R: scanOp("bib.xml", "//book", "x"),
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		algebra.UnorderedJoin{L: scanOp("bib.xml", "//book", "x"), R: scanOp("bib.xml", "//book", "x"),
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		algebra.UnorderedSemiJoin{L: scanOp("bib.xml", "//book", "x"), R: scanOp("bib.xml", "//book", "x"),
			LAttrs: []string{"A1"}, RAttrs: []string{"A2"}},
		algebra.UnorderedGroupUnary{In: scanOp("bib.xml", "//book", "x"), G: "g",
			By: []string{"x"}, Theta: value.CmpEq, F: algebra.SFCount{}},
	}
	for _, op := range ops {
		est := m.Plan(op)
		if est.Cost <= 0 || est.Card <= 0 {
			t.Errorf("%s: degenerate estimate %+v", op.String(), est)
		}
		if est.Cost >= cross.Cost {
			t.Errorf("%s: hash-family cost %v not below σ(×) cost %v", op.String(), est.Cost, cross.Cost)
		}
	}
	_ = l
	_ = r
}

// TestUnorderedCostMatchesOrdered: the unordered variants are estimated at
// most as expensive as their ordered counterparts (they skip order
// bookkeeping), so a cost-based choice under unordered() never prefers the
// ordered operator for cost reasons.
func TestUnorderedCostMatchesOrdered(t *testing.T) {
	m := newOpsModel()
	lScan := scanOp("bids.xml", "//bidtuple", "x")
	rScan := scanOp("items.xml", "//itemtuple", "x")
	eq := algebra.CmpExpr{L: algebra.Var{Name: "A1"}, R: algebra.Var{Name: "A2"}, Op: value.CmpEq}
	ordered := m.Plan(algebra.Join{L: lScan, R: rScan, Pred: eq})
	unordered := m.Plan(algebra.UnorderedJoin{L: lScan, R: rScan,
		LAttrs: []string{"A1"}, RAttrs: []string{"A2"}})
	if unordered.Cost > ordered.Cost {
		t.Errorf("unordered join costed above ordered join: %v > %v", unordered.Cost, ordered.Cost)
	}
	gOrd := m.Plan(algebra.GroupUnary{In: lScan, G: "g", By: []string{"x"},
		Theta: value.CmpEq, F: algebra.SFCount{}})
	gUn := m.Plan(algebra.UnorderedGroupUnary{In: lScan, G: "g", By: []string{"x"},
		Theta: value.CmpEq, F: algebra.SFCount{}})
	if gUn.Cost > gOrd.Cost {
		t.Errorf("unordered grouping costed above ordered grouping: %v > %v", gUn.Cost, gOrd.Cost)
	}
}

// TestXiGroupStreamCost: the streaming Ξ itself is linear; a Sort below it
// carries the n·log n term.
func TestXiGroupStreamCost(t *testing.T) {
	m := newOpsModel()
	in := scanOp("bib.xml", "//author", "x")
	plain := m.Plan(algebra.XiGroupStream{In: in, By: []string{"x"}})
	withSort := m.Plan(algebra.XiGroupStream{In: algebra.Sort{In: in, By: []string{"x"}}, By: []string{"x"}})
	if withSort.Cost <= plain.Cost {
		t.Errorf("sort term missing: %v <= %v", withSort.Cost, plain.Cost)
	}
}
