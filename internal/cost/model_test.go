package cost

import (
	"testing"

	"nalquery/internal/algebra"
	"nalquery/internal/value"
	"nalquery/internal/xpath"
)

// Per-operator estimation tests: every operator kind yields positive,
// monotone estimates.

func scanOp(uri, path, attr string) algebra.Op {
	return algebra.UnnestMap{
		In:   algebra.Map{In: algebra.Singleton{}, Attr: "d" + attr, E: algebra.Doc{URI: uri}},
		Attr: attr,
		E:    algebra.PathOf{Input: algebra.Var{Name: "d" + attr}, Path: xpath.MustParse(path)},
	}
}

func TestEveryOperatorEstimated(t *testing.T) {
	m, _ := modelFor(t, 100)
	e1 := scanOp("bib.xml", "//book", "b")
	e2 := scanOp("bib.xml", "//author", "a")
	eq := algebra.CmpExpr{L: algebra.Var{Name: "b"}, R: algebra.Var{Name: "a"}, Op: value.CmpEq}
	ops := []algebra.Op{
		algebra.Singleton{},
		algebra.Select{In: e1, Pred: eq},
		algebra.Project{In: e1, Names: []string{"b"}},
		algebra.ProjectDrop{In: e1, Names: []string{"b"}},
		algebra.ProjectRename{In: e1, Pairs: []algebra.Rename{{New: "x", Old: "b"}}},
		algebra.ProjectDistinct{In: e1, Pairs: []algebra.Rename{{New: "x", Old: "b"}}},
		algebra.Map{In: e1, Attr: "x", E: algebra.ConstVal{V: value.Int(1)}},
		algebra.Cross{L: e1, R: e2},
		algebra.Join{L: e1, R: e2, Pred: eq},
		algebra.SemiJoin{L: e1, R: e2, Pred: eq},
		algebra.AntiJoin{L: e1, R: e2, Pred: eq},
		algebra.OuterJoin{L: e1, R: e2, Pred: eq, G: "g", Default: algebra.SFCount{}},
		algebra.GroupUnary{In: e2, G: "g", By: []string{"a"}, Theta: value.CmpEq, F: algebra.SFCount{}},
		algebra.GroupUnary{In: e2, G: "g", By: []string{"a"}, Theta: value.CmpLt, F: algebra.SFCount{}},
		algebra.GroupBinary{L: e1, R: e2, G: "g", LAttrs: []string{"b"}, RAttrs: []string{"a"},
			Theta: value.CmpEq, F: algebra.SFCount{}},
		algebra.Unnest{In: e1, Attr: "g"},
		algebra.UnnestDistinct{In: e1, Attr: "g"},
		algebra.XiSimple{In: e1, Cmds: []algebra.Command{algebra.LitCmd("x")}},
		algebra.XiGroup{In: e1, By: []string{"b"}},
		algebra.Sort{In: e1, By: []string{"b"}},
		algebra.AttachSeq{In: e1, Attr: "#"},
		algebra.GraceJoin{L: e1, R: e2, LAttrs: []string{"b"}, RAttrs: []string{"a"}},
	}
	for _, op := range ops {
		est := m.Plan(op)
		if est.Cost <= 0 || est.Card <= 0 {
			t.Errorf("%T: non-positive estimate %+v", op, est)
		}
	}
}

func TestExprCosts(t *testing.T) {
	m, _ := modelFor(t, 100)
	inner := scanOp("bib.xml", "//book", "b")
	exprs := []algebra.Expr{
		algebra.Var{Name: "x"},
		algebra.ConstVal{V: value.Int(1)},
		algebra.Doc{URI: "bib.xml"},
		algebra.PathOf{Input: algebra.Var{Name: "x"}, Path: xpath.MustParse("title")},
		algebra.CmpExpr{L: algebra.Var{Name: "x"}, R: algebra.Var{Name: "y"}, Op: value.CmpEq},
		algebra.InExpr{Item: algebra.Var{Name: "x"}, Seq: algebra.Var{Name: "y"}},
		algebra.AndExpr{L: algebra.Var{Name: "x"}, R: algebra.Var{Name: "y"}},
		algebra.OrExpr{L: algebra.Var{Name: "x"}, R: algebra.Var{Name: "y"}},
		algebra.NotExpr{E: algebra.Var{Name: "x"}},
		algebra.Call{Fn: "count", Args: []algebra.Expr{algebra.Var{Name: "x"}}},
		algebra.AggOfAttr{F: algebra.SFCount{}, Attr: algebra.Var{Name: "g"}},
		algebra.BindTuples{E: algebra.Var{Name: "x"}, Attr: "a'"},
		algebra.ArithExpr{L: algebra.Var{Name: "x"}, R: algebra.Var{Name: "y"}, Op: '+'},
		algebra.NestedApply{F: algebra.SFCount{}, Plan: inner},
		algebra.ExistsQ{Var: "v", RangeAttr: "b", Range: inner, Pred: algebra.ConstVal{V: value.Bool(true)}},
		algebra.ForallQ{Var: "v", RangeAttr: "b", Range: inner, Pred: algebra.ConstVal{V: value.Bool(true)}},
	}
	for _, e := range exprs {
		if c := m.expr(e); c <= 0 {
			t.Errorf("%T: non-positive expression cost %g", e, c)
		}
	}
	if m.expr(nil) != 0 {
		t.Errorf("nil expression must cost 0")
	}
	// Nested expressions dominate scalar ones.
	nested := m.expr(algebra.NestedApply{F: algebra.SFCount{}, Plan: inner})
	scalar := m.expr(algebra.CmpExpr{L: algebra.Var{Name: "x"}, R: algebra.Var{Name: "y"}, Op: value.CmpEq})
	if nested < scalar*100 {
		t.Errorf("nested expression cost %g must dominate scalar %g", nested, scalar)
	}
}

func TestPathCardFallbacks(t *testing.T) {
	m, _ := modelFor(t, 100)
	// Unknown element name: falls back to a fraction of the corpus.
	card := m.pathCard(algebra.PathOf{Input: algebra.Var{Name: "d"},
		Path: xpath.MustParse("//unknown-elem")}, 10)
	if card <= 0 {
		t.Fatalf("unknown element cardinality %g", card)
	}
	// Non-path expressions scale with the input.
	card2 := m.pathCard(algebra.Var{Name: "x"}, 10)
	if card2 < 10 {
		t.Fatalf("non-path fanout %g", card2)
	}
	// distinct-values halves the estimate.
	full := m.pathCard(algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//author")}, 1)
	dist := m.pathCard(algebra.Call{Fn: "distinct-values", Args: []algebra.Expr{
		algebra.PathOf{Input: algebra.Var{Name: "d"}, Path: xpath.MustParse("//author")}}}, 1)
	if dist >= full {
		t.Fatalf("distinct estimate %g must shrink from %g", dist, full)
	}
}
