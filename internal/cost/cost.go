// Package cost implements a simple cardinality-based cost model for NAL
// plans. The paper chooses among alternative unnested plans informally
// ("the most efficient plan typically results from the equivalences with
// the most restrictive conditions attached"); this model makes the choice
// mechanical: nested algebraic expressions multiply their cost by the
// cardinality of the outer sequence, which is exactly why unnesting wins.
//
// Cardinalities derive from document statistics (element counts by name);
// selectivities use fixed textbook defaults. The model only needs to rank
// plans whose costs differ by orders of magnitude, so crude is fine — and
// the ranking is validated against measured times in the tests.
package cost

import (
	"strings"

	"nalquery/internal/algebra"
	"nalquery/internal/dom"
	"nalquery/internal/stats"
	"nalquery/internal/xpath"
)

// Model holds the document statistics estimation runs against.
type Model struct {
	// elemCount is the total number of elements with a given name across
	// all loaded documents.
	elemCount map[string]float64
	// docElems is the total element count per document.
	total float64
	// stats, when non-nil, holds the analyzer's measured per-path profiles
	// keyed by document URI (see internal/stats). With them the model
	// prices unnest-maps from exact path counts instead of element-name
	// totals and prices IndexScan probes as cheap — without them the
	// defaults below apply and index scans are priced pessimistically, so
	// only measured evidence flips a plan onto an index.
	stats map[string]*stats.DocStats
}

// Selectivity defaults.
const (
	selSelect     = 0.5 // generic predicate
	selDistinct   = 0.5 // distinct values fraction
	selGroupKeys  = 0.3 // distinct grouping keys fraction
	nestedPenalty = 1.0 // weight of a nested evaluation per outer tuple
	tupleCost     = 1.0 // cost of producing one tuple
	// Slot-engine per-tuple constants: producing a fresh output row costs
	// slotCost per attribute slot copied (the O(slots) copy that replaced
	// the per-tuple map rebuild), and defaultWidth stands in when an
	// operator's attribute set is unknown. The terms are small relative to
	// tupleCost, so they refine — not reorder — the plan ranking.
	slotCost     = 0.05
	defaultWidth = 4.0
)

// width estimates the slot count of an operator's output rows.
func width(op algebra.Op) float64 {
	if attrs, ok := op.Attrs(); ok {
		return float64(len(attrs))
	}
	return defaultWidth
}

// perTuple is the cost of producing one output row: base cost plus the slot
// copy.
func perTuple(op algebra.Op) float64 {
	return tupleCost + slotCost*width(op)
}

// NewModel gathers element statistics from the loaded documents.
func NewModel(docs map[string]*dom.Document) *Model {
	m := &Model{elemCount: map[string]float64{}}
	for _, d := range docs {
		var walk func(n *dom.Node)
		walk = func(n *dom.Node) {
			if n.Kind == dom.KindElement {
				m.elemCount[n.Name]++
				m.total++
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(d.Root)
	}
	return m
}

// NewModelStats builds a model that additionally consumes the analyzer's
// measured per-path statistics (the engine's default since the stats
// subsystem landed; NewModel remains the constants-only fallback).
func NewModelStats(docs map[string]*dom.Document, st map[string]*stats.DocStats) *Model {
	m := NewModel(docs)
	if len(st) > 0 {
		m.stats = st
	}
	return m
}

// Measured reports whether the model carries analyzer statistics.
func (m *Model) Measured() bool { return m.stats != nil }

// Estimate is the estimated cardinality and cumulative cost of a plan.
type Estimate struct {
	Card float64
	Cost float64
}

// EstimateCard implements algebra.CardEstimator: the estimated output
// cardinality of one operator, used by the execution engine to pre-size
// grouping hash tables and partition buffers instead of growing them from
// Go map defaults.
func (m *Model) EstimateCard(op algebra.Op) float64 {
	return m.Plan(op).Card
}

// Plan estimates a full operator tree.
func (m *Model) Plan(op algebra.Op) Estimate {
	//nal:opswitch cost
	switch w := op.(type) {
	case algebra.Singleton:
		return Estimate{Card: 1, Cost: 1}
	case algebra.Select:
		in := m.Plan(w.In)
		return Estimate{
			Card: in.Card * selSelect,
			Cost: in.Cost + in.Card*(tupleCost+m.expr(w.Pred)),
		}
	case algebra.Project:
		return m.passThrough(w.In)
	case algebra.ProjectDrop:
		return m.passThrough(w.In)
	case algebra.ProjectRename:
		return m.passThrough(w.In)
	case algebra.ProjectDistinct:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card * selDistinct, Cost: in.Cost + in.Card*tupleCost}
	case algebra.Map:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*(perTuple(op)+m.expr(w.E))}
	case algebra.UnnestMap:
		in := m.Plan(w.In)
		card := m.pathCard(w.E, in.Card)
		return Estimate{Card: card, Cost: in.Cost + in.Card*m.expr(w.E) + card*perTuple(op)}
	case algebra.IndexScan:
		in := m.Plan(w.In)
		if m.stats != nil {
			// Measured: a probe resolves the node list without touching the
			// document — the cost is the emission itself.
			card := maxF(w.EstCard, 1)
			return Estimate{Card: card, Cost: in.Cost + in.Card*tupleCost + card*perTuple(op)}
		}
		// No measured statistics: price the scan as a full path scan plus a
		// filter, slightly above the σ(Υ) it replaces — without measured
		// evidence the base plans stay preferred.
		n := m.elemCount[pathScanName(w.Path)]
		if n == 0 {
			n = maxF(m.total*0.01, 1)
		}
		// No probe-selectivity discount on the card and a per-tuple
		// surcharge above what the probed conjunct would have cost as a
		// filter: the estimate strictly dominates the scan-and-filter it
		// replaces, so only measured evidence flips a plan onto an index.
		return Estimate{Card: maxF(n, 1),
			Cost: in.Cost + n*(tupleCost+m.expr(w.Key)+1.5) + n*perTuple(op)}
	case algebra.Cross:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := l.Card * r.Card
		return Estimate{Card: card, Cost: l.Cost + r.Cost + card*perTuple(op)}
	case algebra.Join:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*perTuple(op)}
	case algebra.SemiJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		return Estimate{Card: l.Card * selSelect, Cost: l.Cost + r.Cost + (l.Card + r.Card)}
	case algebra.AntiJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		return Estimate{Card: l.Card * selSelect, Cost: l.Cost + r.Cost + (l.Card + r.Card)}
	case algebra.OuterJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*perTuple(op)}
	// The grouping family runs slot-natively with RowSeq payloads: one
	// hash pass over the input plus a slot-rate output term per emitted
	// group row. Payload construction itself is O(1) per group (the id
	// payload wraps the bucket rows without copying), so no per-member
	// term appears.
	case algebra.GroupUnary:
		in := m.Plan(w.In)
		card := in.Card * selGroupKeys
		if w.Theta != 0 { // non-equality θ: key × input scan
			return Estimate{Card: card, Cost: in.Cost + card*in.Card*tupleCost}
		}
		return Estimate{Card: card, Cost: in.Cost + in.Card*tupleCost + card*slotCost*width(op)}
	case algebra.GroupSelf:
		// One hash pass plus a full-width output row per input tuple: the
		// operator annotates in place, so Card is unchanged.
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*tupleCost + in.Card*slotCost*width(op)}
	case algebra.GroupBinary:
		l, r := m.Plan(w.L), m.Plan(w.R)
		if w.Theta != 0 || w.ForceScan {
			return Estimate{Card: l.Card, Cost: l.Cost + r.Cost + l.Card*r.Card*tupleCost}
		}
		return Estimate{Card: l.Card, Cost: l.Cost + r.Cost + (l.Card + r.Card) + l.Card*slotCost*width(op)}
	case algebra.Unnest:
		in := m.Plan(w.In)
		card := in.Card * 3
		return Estimate{Card: card, Cost: in.Cost + card*perTuple(op)}
	case algebra.UnnestDistinct:
		in := m.Plan(w.In)
		card := in.Card * 3
		return Estimate{Card: card, Cost: in.Cost + card*perTuple(op)}
	case algebra.XiSimple:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*tupleCost}
	case algebra.XiGroup:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*tupleCost}
	case algebra.Sort:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*logF(in.Card)*tupleCost}
	case algebra.AttachSeq:
		return m.passThrough(w.In)
	// The partitioned family executes slot-natively (no conversion shim):
	// the operators that materialize concatenated output rows (the inner
	// and outer joins) carry the same slot-rate perTuple output term as
	// the ordered hash join, while ⋉ᵁ/▷ᵁ emit retained left rows at zero
	// copy and keep the linear-pass formula. Partition passes stay linear
	// in the inputs.
	case algebra.GraceJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*perTuple(op)}
	case algebra.OPHashJoin:
		// Partitioned probe + P-way merge: linear passes plus a log-P merge
		// term on the output.
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*(perTuple(op)+0.5)}
	case algebra.UnorderedJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*perTuple(op)}
	case algebra.UnorderedSemiJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		return Estimate{Card: l.Card * selSelect, Cost: l.Cost + r.Cost + (l.Card + r.Card)}
	case algebra.UnorderedAntiJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		return Estimate{Card: l.Card * selSelect, Cost: l.Cost + r.Cost + (l.Card + r.Card)}
	case algebra.UnorderedOuterJoin:
		l, r := m.Plan(w.L), m.Plan(w.R)
		card := maxF(l.Card, r.Card)
		return Estimate{Card: card, Cost: l.Cost + r.Cost + (l.Card+r.Card)*tupleCost + card*perTuple(op)}
	case algebra.UnorderedGroupUnary:
		in := m.Plan(w.In)
		card := in.Card * selGroupKeys
		if w.Theta != 0 {
			return Estimate{Card: card, Cost: in.Cost + card*in.Card*tupleCost}
		}
		return Estimate{Card: card, Cost: in.Cost + in.Card*tupleCost + card*slotCost*width(op)}
	case algebra.UnorderedGroupBinary:
		l, r := m.Plan(w.L), m.Plan(w.R)
		if w.Theta != 0 {
			return Estimate{Card: l.Card, Cost: l.Cost + r.Cost + l.Card*r.Card*tupleCost}
		}
		return Estimate{Card: l.Card, Cost: l.Cost + r.Cost + (l.Card + r.Card) + l.Card*slotCost*width(op)}
	case algebra.XiGroupStream:
		in := m.Plan(w.In)
		return Estimate{Card: in.Card, Cost: in.Cost + in.Card*tupleCost}
	default:
		// Unknown operator: pass through children pessimistically.
		var est Estimate
		for _, c := range op.Children() {
			ce := m.Plan(c)
			est.Card = maxF(est.Card, ce.Card)
			est.Cost += ce.Cost
		}
		if est.Card == 0 {
			est.Card = 1
		}
		est.Cost += est.Card * tupleCost
		return est
	}
}

func (m *Model) passThrough(in algebra.Op) Estimate {
	e := m.Plan(in)
	return Estimate{Card: e.Card, Cost: e.Cost + e.Card*tupleCost}
}

// expr estimates the per-invocation cost of a subscript expression. Nested
// algebraic expressions cost their full plan — the caller multiplies by the
// outer cardinality, producing the quadratic term unnesting removes.
func (m *Model) expr(e algebra.Expr) float64 {
	switch w := e.(type) {
	case nil:
		return 0
	case algebra.Param:
		// External-variable read: one binding-table index, constant-cheap.
		// Predicates over parameters take the same default selectivities as
		// predicates over literals (selSelect and friends) — the binding is
		// unknown at prepare time, so the model estimates parametrically and
		// the plan choice holds for every run.
		return 0.05
	case algebra.NestedApply:
		return nestedPenalty * m.Plan(w.Plan).Cost
	case algebra.ExistsQ:
		return nestedPenalty * (m.Plan(w.Range).Cost + m.expr(w.Pred))
	case algebra.ForallQ:
		return nestedPenalty * (m.Plan(w.Range).Cost + m.expr(w.Pred))
	case algebra.AndExpr:
		return m.expr(w.L) + m.expr(w.R)
	case algebra.OrExpr:
		return m.expr(w.L) + m.expr(w.R)
	case algebra.NotExpr:
		return m.expr(w.E)
	case algebra.CmpExpr:
		return m.expr(w.L) + m.expr(w.R) + 0.1
	case algebra.InExpr:
		return m.expr(w.Item) + m.expr(w.Seq) + 0.5
	case algebra.Call:
		c := 0.2
		for _, a := range w.Args {
			c += m.expr(a)
		}
		return c
	case algebra.AggOfAttr:
		return 1
	case algebra.PathOf:
		return m.expr(w.Input) + 1
	case algebra.BindTuples:
		return m.expr(w.E) + 0.5
	case algebra.Doc:
		return 1
	default:
		return 0.1
	}
}

// pathCard estimates the output cardinality of an unnest-map over a path or
// distinct-values expression. With measured statistics the estimate is
// path-aware: the summed counts of the measured absolute paths the
// expression reaches (from any context depth — relative paths apply
// per-tuple, and the full pipeline reaches every occurrence). Without them,
// the total number of elements with the path's final name.
func (m *Model) pathCard(e algebra.Expr, inCard float64) float64 {
	if m.stats != nil {
		if p, distinct, ok := finalPath(e); ok {
			n, resolved := 0.0, true
			for _, ds := range m.stats {
				c, ok := ds.SuffixCount(p)
				if !ok {
					resolved = false
					break
				}
				n += c
			}
			if resolved {
				if distinct {
					n *= selDistinct
				}
				return maxF(n, 1)
			}
		}
	}
	name, distinct := finalElemName(e)
	if name == "" {
		return maxF(inCard*2, 1)
	}
	n := m.elemCount[name]
	if n == 0 {
		n = maxF(m.total*0.01, 1)
	}
	if distinct {
		n *= selDistinct
	}
	return maxF(n, 1)
}

func finalElemName(e algebra.Expr) (string, bool) {
	switch w := e.(type) {
	case algebra.PathOf:
		steps := w.Path.Steps
		for i := len(steps) - 1; i >= 0; i-- {
			if steps[i].Name != "" {
				return steps[i].Name, false
			}
		}
		return "", false
	case algebra.Call:
		if w.Fn == "distinct-values" && len(w.Args) == 1 {
			n, _ := finalElemName(w.Args[0])
			return n, true
		}
	case algebra.BindTuples:
		return finalElemName(w.E)
	}
	return "", false
}

// finalPath extracts the path expression an unnest-map scans, through the
// distinct-values and tuple-binding wrappers finalElemName also unwraps.
func finalPath(e algebra.Expr) (xpath.Path, bool, bool) {
	switch w := e.(type) {
	case algebra.PathOf:
		return w.Path, false, true
	case algebra.Call:
		if w.Fn == "distinct-values" && len(w.Args) == 1 {
			p, _, ok := finalPath(w.Args[0])
			return p, true, ok
		}
	case algebra.BindTuples:
		return finalPath(w.E)
	}
	return xpath.Path{}, false, false
}

// pathScanName is the name of the last element segment of a display path —
// the nodes a structural scan of it binds ("/bib/book/@year" → "book",
// "/bib/book" → "book"). Attribute leaves resolve to their owner element:
// element counts are what the constants-only model keeps.
func pathScanName(p string) string {
	for {
		i := strings.LastIndexByte(p, '/')
		if i < 0 {
			return strings.TrimPrefix(p, "@")
		}
		leaf := p[i+1:]
		if !strings.HasPrefix(leaf, "@") {
			return leaf
		}
		p = p[:i]
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func logF(x float64) float64 {
	// Cheap log2 approximation, enough for a ranking model.
	l := 1.0
	for x > 2 {
		x /= 2
		l++
	}
	return l
}
