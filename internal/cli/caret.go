package cli

import (
	"strings"
)

// Caret renders the source line a parse error points at with a caret
// marking the column, the classic two-line compiler diagnostic:
//
//	for $x inn e return $x
//	       ^
//
// line and col are 1-based (the convention of nalquery.ParseError); a
// position outside the source returns "" so callers can print it
// unconditionally. Tabs in the prefix are preserved in the caret line so
// the marker stays aligned under any tab width.
func Caret(src string, line, col int) string {
	if line < 1 || col < 1 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if line > len(lines) {
		return ""
	}
	text := strings.TrimRight(lines[line-1], "\r")
	if col > len(text)+1 {
		return ""
	}
	var pad strings.Builder
	for _, b := range []byte(text[:col-1]) {
		if b == '\t' {
			pad.WriteByte('\t')
		} else {
			pad.WriteByte(' ')
		}
	}
	return text + "\n" + pad.String() + "^"
}
