// Package cli holds small helpers shared by the command-line front ends
// (cmd/nalrun, cmd/nalsh).
package cli

import "strconv"

// ParseVarValue parses an external-variable binding value given on a
// command line — nalrun's -var name=value and nalsh's \set — with one
// shared rule: integer, then float, then string, with surrounding quotes
// stripped (the way to bind a numeric-looking string, e.g. "1995").
func ParseVarValue(s string) any {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}
