// Package cli holds small helpers shared by the command-line front ends
// (cmd/nalrun, cmd/nalsh).
package cli

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseVarValue parses an external-variable binding value given on a
// command line — nalrun's -var name=value and nalsh's \set — with one
// shared rule: integer, then float, then string, with surrounding quotes
// stripped (the way to bind a numeric-looking string, e.g. "1995").
func ParseVarValue(s string) any {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	if len(s) >= 2 && (s[0] == '"' && s[len(s)-1] == '"' || s[0] == '\'' && s[len(s)-1] == '\'') {
		return s[1 : len(s)-1]
	}
	return s
}

// ParseBytes parses a byte-count with an optional binary suffix — "65536",
// "64k", "16m", "1g" (case-insensitive, trailing "b" allowed as in "64kb").
// It is the shared syntax of every memory-budget knob: nalrun -max-memory,
// nalsh \limit, nalserved -max-memory and the X-Nalquery-Max-Memory header.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	t = strings.TrimSuffix(t, "b")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "g"):
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q (want e.g. 65536, 64k, 16m, 1g)", s)
	}
	return n * mult, nil
}
