package nalquery

import (
	"strings"
	"testing"
)

func TestEngineAPIErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Compile(`for $x in`); err == nil {
		t.Fatalf("syntax error must surface")
	}
	if err := e.LoadXMLString("bad.xml", `<a><b></a>`); err == nil {
		t.Fatalf("malformed XML must surface")
	}
	if e.Document("nothing.xml") != nil {
		t.Fatalf("unknown document must be nil")
	}
}

func TestPlanLookup(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(QueryQ3Existential)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Plan("does-not-exist"); err == nil {
		t.Fatalf("unknown plan must error")
	}
	p, err := q.Plan("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name == "nested" {
		t.Fatalf("default plan must be the most optimized, got nested")
	}
	if p.Explain() == "" {
		t.Fatalf("plan must explain itself")
	}
	if _, _, err := q.Execute("no-such-plan"); err == nil {
		t.Fatalf("executing an unknown plan must error")
	}
}

func TestOneShotQuery(t *testing.T) {
	e := tinyEngine(t)
	out, err := e.Query(QueryQ6HavingCount)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<popular-item>1001</popular-item>") {
		t.Fatalf("one-shot query: %s", out)
	}
}

func TestNormalizedFormExposed(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	// The normalized form must re-parse (it is shown to users and fed to
	// nalexplain).
	if _, err := e.Compile(q.Normalized); err != nil {
		t.Fatalf("normalized form does not re-compile: %v\n%s", err, q.Normalized)
	}
}

func TestCatalogCustomDocument(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("inv.xml", `<inventory>
<product><sku>A</sku><qty>5</qty></product>
<product><sku>B</sku><qty>0</qty></product>
<product><sku>A</sku><qty>2</qty></product>
</inventory>`); err != nil {
		t.Fatal(err)
	}
	// Register DTD facts so the condition-bearing grouping plan becomes
	// admissible for a non-use-case document.
	f := e.Catalog().Doc("inv.xml")
	f.Child("inventory", "product", 0, -1)
	f.Child("product", "sku", 1, 1)
	f.Child("product", "qty", 1, 1)

	q, err := e.Compile(`
let $d1 := doc("inv.xml")
for $s1 in distinct-values($d1//sku)
let $t1 := sum(let $d2 := doc("inv.xml")
               for $p2 in $d2//product
               let $s2 := $p2/sku
               let $q2 := $p2/qty
               where $s1 = $s2
               return decimal($q2))
return <stock sku="{ $s1 }">{ $t1 }</stock>`)
	if err != nil {
		t.Fatal(err)
	}
	names := strings.Join(planNames(q), ",")
	if !strings.Contains(names, "grouping") {
		t.Fatalf("custom facts must enable the grouping plan, have %s", names)
	}
	out, _, err := q.Execute("grouping")
	if err != nil {
		t.Fatal(err)
	}
	want := `<stock sku="A">7</stock><stock sku="B">0</stock>`
	if out != want {
		t.Fatalf("custom document grouping:\ngot:  %s\nwant: %s", out, want)
	}
	nested, _, err := q.Execute("nested")
	if err != nil {
		t.Fatal(err)
	}
	if nested != out {
		t.Fatalf("plans disagree: %s vs %s", nested, out)
	}
}

// TestThetaCorrelationEndToEnd exercises Eqv. 1 / Eqv. 3 with a
// non-equality correlation predicate through the public API.
func TestThetaCorrelationEndToEnd(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(`
let $d1 := document("bids.xml")
for $a1 in distinct-values($d1//bid)
let $c1 := count(let $d2 := document("bids.xml")
                 for $b2 in $d2//bidtuple/bid
                 where $b2 < $a1
                 return $b2)
return <r bid="{ $a1 }">{ $c1 }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for _, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if ref == "" {
			ref = out
		} else if out != ref {
			t.Fatalf("θ-correlation plan %s differs:\n%s\nvs\n%s", p.Name, out, ref)
		}
	}
	// Bids: 35,40,45,55,60,65,70. Strictly-cheaper counts per first
	// occurrence order.
	if !strings.Contains(ref, `<r bid="35">0</r>`) || !strings.Contains(ref, `<r bid="70">6</r>`) {
		t.Fatalf("θ-correlation result wrong: %s", ref)
	}
}

// TestOrderPreservationUnderReorderedInput verifies the ordered-context
// property the paper is about: titles per author come back in document
// order even though the grouping hash visits authors in first-occurrence
// order.
func TestOrderPreservationUnderReorderedInput(t *testing.T) {
	e := NewEngine()
	// Authors deliberately interleaved so per-author titles are
	// non-contiguous.
	if err := e.LoadXMLString("bib.xml", `<bib>
<book year="1994"><title>Z-first</title>
  <author><last>B</last><first>.</first></author>
  <publisher>p</publisher><price>1</price></book>
<book year="1995"><title>A-second</title>
  <author><last>A</last><first>.</first></author>
  <publisher>p</publisher><price>1</price></book>
<book year="1996"><title>M-third</title>
  <author><last>B</last><first>.</first></author>
  <publisher>p</publisher><price>1</price></book>
</bib>`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		// B's titles must be Z-first then M-third (document order), never
		// sorted or reversed.
		if !strings.Contains(out, "<title>Z-first</title><title>M-third</title>") {
			t.Errorf("plan %s broke document order of group members:\n%s", p.Name, out)
		}
	}
}

func TestStatsTuplesCounted(t *testing.T) {
	e := tinyEngine(t)
	q, err := e.Compile(QueryQ3Existential)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	if st.Tuples == 0 {
		t.Fatalf("scan tuples must be counted")
	}
}
