package nalquery

import (
	"errors"
	"strings"
	"testing"

	"nalquery/internal/qgen"
	"nalquery/internal/xquery"
)

// This file is the pinned crash corpus: every query here was discovered by
// the qgen differential oracle or the native fuzz targets and exposed a
// real divergence, panic, or round-trip break. Each test carries its
// original reproducer (seed + index where generator-found) and fails with
// the same oracle the sweep uses, so a regression reports exactly like the
// original find.

func crasherEngine(t *testing.T) *Engine {
	t.Helper()
	eng := NewEngine()
	size, apb := qgen.DocSizes()
	eng.LoadUseCaseDocuments(size, apb)
	return eng
}

// assertAllPlansAgree runs the query through every plan alternative on both
// engines plus the typed consumption path and fails on any divergence from
// the first plan's slot-engine output — the differential oracle, pinned.
func assertAllPlansAgree(t *testing.T, eng *Engine, query string) string {
	t.Helper()
	p, err := eng.Prepare(query)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var ref string
	for pi, plan := range p.Plans() {
		for _, mode := range []struct {
			name string
			opts []RunOption
		}{
			{"slot", []RunOption{WithPlan(plan.Name)}},
			{"map", []RunOption{WithPlan(plan.Name), WithReferenceEngine()}},
		} {
			out, err := sweepRun(p, mode.opts)
			if err != nil {
				t.Fatalf("plan %q on %s engine: %v", plan.Name, mode.name, err)
			}
			if pi == 0 && mode.name == "slot" {
				ref = out
			} else if out != ref {
				t.Errorf("divergence: plan %q on %s engine\nwant: %q\ngot:  %q",
					plan.Name, mode.name, ref, out)
			}
		}
		typed, err := sweepRunTyped(p, []RunOption{WithPlan(plan.Name)})
		if err != nil {
			t.Fatalf("plan %q typed consumption: %v", plan.Name, err)
		}
		if typed != ref {
			t.Errorf("divergence: plan %q typed consumption\nwant: %q\ngot:  %q",
				plan.Name, ref, typed)
		}
	}
	return ref
}

// Crasher 1 — qgen seed=20240808 index=163. The Eqv.8/9 having-count
// grouping plan grouped tuples whose optional key path matched nothing
// (//usertuple without <rating>) into a phantom Null-key group that the
// nested plan's distinct-values outer side never produces, emitting an
// extra empty element. Fixed by filtering exists(key) before grouping.
func TestCrasherPhantomNullKeyGroupHavingCount(t *testing.T) {
	eng := crasherEngine(t)
	out := assertAllPlansAgree(t, eng, `
let $d1 := doc("users.xml")
for $i2 in distinct-values($d1//rating)
where count($d1//usertuple[rating = $i2]) >= 1
return <popular>{ $i2 }</popular>`)
	if strings.Contains(out, "<popular></popular>") {
		t.Fatalf("phantom empty group in output: %q", out)
	}
}

// Crasher 2 — same null-key trap through Eqv.3 (unary grouping) and the
// fused group-Ξ plan: the Q1 shape over a document where the grouping key
// is optional produced a phantom <g><k></k>... group on the grouping
// alternatives only.
func TestCrasherPhantomNullKeyGroupEqv3(t *testing.T) {
	eng := crasherEngine(t)
	out := assertAllPlansAgree(t, eng, `
let $d1 := doc("users.xml")
for $r in distinct-values($d1//rating)
return <g><k>{ $r }</k><who>{ for $u in $d1//usertuple
                              where $u/rating = $r
                              return $u/userid }</who></g>`)
	if strings.Contains(out, "<k></k>") {
		t.Fatalf("phantom empty-key group in output: %q", out)
	}
}

// Crasher 3 — qgen seed=1 index=194. The self-join-grouping plan (Sec. 5.4)
// emitted tuples group-major: Γ over the correlation key followed by µ
// re-clusters equal key values, breaking document order whenever they occur
// non-contiguously (U01,U00,U01,U00 became U01,U01,U00,U00). The paper's
// Eqv. 8 assumes ΠD(e1) precisely to avoid this; the fix replaces Γ+µ with
// the order-preserving Γself operator.
func TestCrasherSelfJoinGroupingOrder(t *testing.T) {
	eng := crasherEngine(t)
	assertAllPlansAgree(t, eng, `
let $d1 := doc("items.xml")
let $d2 := doc("items.xml")
for $a3 in $d1//itemtuple/offered_by
where some $b4 in $d2//itemtuple/offered_by satisfies $a3 = $b4
return <j>{ $a3 }</j>`)
}

// Crasher 4 — qgen seed=2 index=101. The anti-semijoin plan for a universal
// quantifier admitted outer tuples whose compared field was absent:
// ¬($q = ()) is true under general-comparison semantics, but the rewrite
// folded it to $q != (), which is false. every-over-nonempty-range with an
// absent outer field must reject the tuple.
func TestCrasherAntiJoinAbsentOuterField(t *testing.T) {
	eng := crasherEngine(t)
	out := assertAllPlansAgree(t, eng, `
let $d1 := doc("users.xml")
for $x2 in $d1//usertuple
where every $q3 in doc("users.xml")//usertuple/userid satisfies $q3 = $x2/rating
return <hit>{ $x2/userid }</hit>`)
	if out != "" {
		t.Fatalf("userids can never equal ratings; want empty output, got %q", out)
	}
}

// Crasher 5 — qgen seed=1 index=253. Same comparison-negation unsoundness
// through a different document pair (prices vs optional user rating).
func TestCrasherAntiJoinAbsentFieldPrices(t *testing.T) {
	eng := crasherEngine(t)
	out := assertAllPlansAgree(t, eng, `
let $d1 := doc("users.xml")
for $x2 in $d1//usertuple
where every $q3 in doc("prices.xml")//book/price satisfies $q3 = $x2/rating
return <hit>{ $x2/rating }</hit>`)
	if strings.Contains(out, "<hit></hit>") {
		t.Fatalf("tuple with absent rating admitted: %q", out)
	}
}

// Crasher 6 — the same fold was latent in the paper's own Q5 shape: a book
// without @year must NOT satisfy "every ... satisfies $b/@year > 1993"
// (year > 1993 on an empty sequence is false), but the folded anti-join
// predicate @year <= 1993 also evaluated false, keeping the author.
func TestCrasherEveryOverMissingAttribute(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("bib.xml", `<bib>
  <book year="2001"><title>A</title><author>alice</author></book>
  <book><title>B</title><author>bob</author></book>
</bib>`); err != nil {
		t.Fatal(err)
	}
	out := assertAllPlansAgree(t, eng, `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $b2 in doc("bib.xml")//book[author = $a1]
      satisfies $b2/@year > 1993
return <n>{ $a1 }</n>`)
	if strings.Contains(out, "bob") {
		t.Fatalf("author of a year-less book satisfied the universal: %q", out)
	}
	if !strings.Contains(out, "alice") {
		t.Fatalf("author with year 2001 must qualify: %q", out)
	}
}

// Crasher 7 — FuzzRoundTrip testdata/fuzz/FuzzRoundTrip/9973729f18e8c4b9:
// "if(0)then<A/>" printed its implicit else branch as "()", which reparsed
// to a node printing "empty-sequence()" — the parser and the printer used
// two representations for the empty sequence.
func TestCrasherPrinterEmptySequenceFixpoint(t *testing.T) {
	assertPrintFixpoint(t, `if(0)then<A/>`)
	assertPrintFixpoint(t, `for $x in doc("d.xml")//a return if ($x/b) then $x else ()`)
}

// Crasher 8 — FuzzRoundTrip testdata/fuzz/FuzzRoundTrip/fa087f6173bbe5bd:
// the parser consumed wildcard steps ("/*") but dropped the "*", leaving an
// empty step name that printed as a bare slash ("./" — unparseable) and
// matched nothing. Wildcards now survive to the xpath layer, which always
// supported them.
func TestCrasherWildcardStepDropped(t *testing.T) {
	assertPrintFixpoint(t, `/*`)
	eng := crasherEngine(t)
	out := assertAllPlansAgree(t, eng,
		`for $c in doc("bib.xml")//book/* return <c>{ $c }</c>`)
	if !strings.Contains(out, "<title>") || !strings.Contains(out, "<price>") {
		t.Fatalf("wildcard step must match every child element: %.120q", out)
	}
}

// Crasher 9 — FuzzRoundTrip testdata/fuzz/FuzzRoundTrip/5bb39239eb390d95:
// "(0>0)*0" printed as "(0 > 0 * 0)", which reparses with the comparison
// outermost — the printer lost the precedence override because comparison
// operands did not re-parenthesize nested comparisons.
func TestCrasherPrinterPrecedenceLoss(t *testing.T) {
	assertPrintFixpoint(t, `(0>0)*0`)
	assertPrintFixpoint(t, `let $x := ((1 = 2) = 3) return $x`)
	assertPrintFixpoint(t, `for $b in doc("d.xml")//a where ($b/x > 1) + 1 > 0 return $b`)
}

// Crasher 10 — FuzzParse: a parenthesis/FLWR bomb must come back as a typed
// *ParseError from the depth guard, not a goroutine-killing stack overflow.
func TestCrasherParserDepthBomb(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("(", 100000),
		strings.Repeat(`for $x in `, 20000) + "$y",
		strings.Repeat(`if (1) then `, 20000) + "0 else 0",
	} {
		_, err := xquery.ParseModule(src)
		var pe *xquery.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("depth bomb: got %T (%v), want *ParseError", err, err)
		}
	}
}

// assertPrintFixpoint parses src, reprints, reparses, and requires the
// printer to be a fixpoint — FuzzRoundTrip's oracle on one pinned input.
func assertPrintFixpoint(t *testing.T, src string) {
	t.Helper()
	m, err := xquery.ParseModule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	printed := m.String()
	m2, err := xquery.ParseModule(printed)
	if err != nil {
		t.Fatalf("reprint of %q does not reparse: %v (printed %q)", src, err, printed)
	}
	if again := m2.String(); again != printed {
		t.Fatalf("printer not a fixpoint for %q: %q then %q", src, printed, again)
	}
}
