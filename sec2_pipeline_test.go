package nalquery

import (
	"strings"
	"testing"
)

// Conjunctive where clauses mixing a quantifier with plain predicates:
// normalization splits them (sound by σ-commutation, Sec. 2), so Eqv. 6/7
// still match the quantifier's selection and the plain conjunct ends up
// *below* the derived semijoin, filtering early.

const residualWhereQuery = `
let $d1 := document("bib.xml")
for $t1 in $d1//book/title
where (some $t2 in (
    let $d3 := document("reviews.xml")
    for $t3 in $d3//entry/title
    return $t3 )
  satisfies $t1 = $t2) and starts-with(string($t1), "Title 1")
return <hit>{ string($t1) }</hit>`

// TestResidualWherePushedBelowSemijoin: the semijoin plan exists despite
// the conjunction, the plain conjunct sits below the semijoin, and results
// match the nested baseline.
func TestResidualWherePushedBelowSemijoin(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(50, 2)
	q, err := eng.Compile(residualWhereQuery)
	if err != nil {
		t.Fatal(err)
	}
	var semijoin *Plan
	for i := range q.Plans() {
		if q.Plans()[i].Name == "semijoin" {
			semijoin = &q.Plans()[i]
		}
	}
	if semijoin == nil {
		t.Fatalf("no semijoin plan despite the conjunctive where; have %v", planNames(q))
	}
	// Plan shape: the starts-with selection is below the semijoin (deeper
	// in the indented explain output).
	explain := semijoin.Explain()
	semiIdx := strings.Index(explain, "⋉")
	selIdx := strings.Index(explain, "starts-with")
	if semiIdx < 0 || selIdx < 0 {
		t.Fatalf("unexpected plan shape:\n%s", explain)
	}
	if selIdx < semiIdx {
		t.Errorf("starts-with selection still above the semijoin:\n%s", explain)
	}

	nested, nestedStats, err := q.Execute("nested")
	if err != nil {
		t.Fatal(err)
	}
	pushed, pushedStats, err := q.Execute("semijoin")
	if err != nil {
		t.Fatal(err)
	}
	if nested != pushed {
		t.Errorf("plans disagree:\nnested: %q\nsemijoin: %q", nested, pushed)
	}
	if !strings.Contains(pushed, "Title 1") {
		t.Errorf("expected matches in output, got %q", pushed)
	}
	if pushedStats.NestedEvals != 0 {
		t.Errorf("semijoin plan ran %d nested-loop iterations", pushedStats.NestedEvals)
	}
	if nestedStats.NestedEvals == 0 {
		t.Errorf("nested plan ran no nested-loop iterations")
	}
}

// TestConjunctiveEveryWhereUnnests: the same splitting admits Eqv. 7 for
// universal quantifiers in conjunctions.
func TestConjunctiveEveryWhereUnnests(t *testing.T) {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(40, 2)
	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where (every $y2 in (
    let $d3 := doc("bib.xml")
    for $b3 in $d3//book
    let $y3 := $b3/@year
    for $a3 in $b3/author
    where $a1 = $a3
    return $y3)
  satisfies $y2 > 1993) and string-length($a1) > 3
return <na>{ $a1 }</na>`)
	if err != nil {
		t.Fatal(err)
	}
	names := planNames(q)
	hasUnnested := false
	for _, n := range names {
		if n == "anti-semijoin" || n == "grouping" {
			hasUnnested = true
		}
	}
	if !hasUnnested {
		t.Fatalf("conjunction blocked Eqv. 7/9; plans: %v", names)
	}
	ref := ""
	for i, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("plan %q: %v", p.Name, err)
		}
		if i == 0 {
			ref = out
		} else if out != ref {
			t.Errorf("plan %q output differs from nested", p.Name)
		}
	}
}
