package nalquery

import (
	"strings"
	"testing"
)

// End-to-end tests for the frontend extensions: positional path predicates
// and the wider builtin function library.

// TestPositionalPredicateEndToEnd: author[1] survives normalization (the
// Sec. 3 rewrite moves only value predicates into where clauses) and
// evaluates per book.
func TestPositionalPredicateEndToEnd(t *testing.T) {
	eng := NewEngine()
	eng.LoadXMLString("bib.xml", `<bib>
		<book><title>t1</title><author>a1</author><author>a2</author></book>
		<book><title>t2</title><author>a3</author></book>
	</bib>`)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
return <first>{ string($b/author[1]) }</first>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<first>a1</first><first>a3</first>"
	if strings.Join(strings.Fields(out), "") != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

// TestPositionalLastEndToEnd: [last()] through the full pipeline.
func TestPositionalLastEndToEnd(t *testing.T) {
	eng := NewEngine()
	eng.LoadXMLString("bib.xml", `<bib>
		<book><author>a1</author><author>a2</author></book>
		<book><author>a3</author></book>
	</bib>`)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book
return <last>{ string($b/author[last()]) }</last>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<last>a2</last><last>a3</last>"
	if strings.Join(strings.Fields(out), "") != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

// TestValuePredicateStillNormalized: value predicates keep going through
// the Sec. 3 where-clause rewrite alongside positional ones.
func TestValuePredicateStillNormalized(t *testing.T) {
	eng := NewEngine()
	eng.LoadXMLString("bib.xml", `<bib>
		<book><title>t1</title><author>walker</author></book>
		<book><title>t2</title><author>smith</author></book>
	</bib>`)
	out, err := eng.Query(`
let $d := doc("bib.xml")
for $b in $d//book[author = "smith"]
return $b/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t2") || strings.Contains(out, "t1") {
		t.Errorf("value predicate filtered wrongly: %q", out)
	}
}

// TestBuiltinsEndToEnd: string functions compose inside return clauses.
func TestBuiltinsEndToEnd(t *testing.T) {
	eng := NewEngine()
	eng.LoadXMLString("b.xml", `<r><v>  Hello World  </v><n>2.5</n></r>`)
	cases := []struct {
		q, want string
	}{
		{`let $d := doc("b.xml") for $v in $d//v return <o>{ upper-case(normalize-space($v)) }</o>`,
			"<o>HELLO WORLD</o>"},
		{`let $d := doc("b.xml") for $v in $d//v return <o>{ substring(normalize-space($v), 7) }</o>`,
			"<o>World</o>"},
		{`let $d := doc("b.xml") for $n in $d//n return <o>{ round(decimal($n)) }</o>`,
			"<o>3</o>"},
		{`let $d := doc("b.xml") for $v in $d//v return <o>{ substring-before(normalize-space($v), " ") }</o>`,
			"<o>Hello</o>"},
	}
	for _, c := range cases {
		out, err := eng.Query(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if strings.TrimSpace(out) != c.want {
			t.Errorf("query %s\n got %q, want %q", c.q, out, c.want)
		}
	}
}
