package nalquery

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential testing: randomized variants of the paper's query shapes are
// compiled, and every plan alternative must produce byte-identical output
// under both execution engines. Unnested alternatives must additionally
// execute zero nested-loop iterations — the paper's central claim, asserted
// per query.

// randQuery builds a random query from the paper's shapes with randomized
// aggregates, comparison operators and thresholds.
func randQuery(rng *rand.Rand) string {
	aggs := []string{"min", "max", "sum", "count", "avg"}
	cmps := []string{">", ">=", "<", "<=", "="}
	switch rng.Intn(5) {
	case 0: // Q1 grouping
		return `
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author><name>{ $a1 }</name>
    { let $d2 := doc("bib.xml")
      for $b2 in $d2//book
      let $a2 := $b2/author
      let $t2 := $b2/title
      where $a1 = $a2
      return $t2 }
  </author>`
	case 1: // Q2 aggregation with random aggregate
		return fmt.Sprintf(`
let $d1 := doc("prices.xml")
for $t1 in distinct-values($d1//book/title)
let $m1 := %s(
  let $d2 := doc("prices.xml")
  for $b2 in $d2//book
  let $t2 := $b2/title
  let $c2 := decimal($b2/price)
  where $t1 = $t2
  return $c2)
return <r><t>{ $t1 }</t><v>{ $m1 }</v></r>`, aggs[rng.Intn(len(aggs))])
	case 2: // Q3 existential with random predicate op
		return fmt.Sprintf(`
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
where some $t2 in (
  let $d3 := doc("reviews.xml")
  for $t3 in $d3//entry/title
  return $t3)
satisfies $t1 %s $t2
return <hit>{ string($t1) }</hit>`, cmps[rng.Intn(len(cmps))])
	case 3: // Q5 universal with random threshold
		return fmt.Sprintf(`
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
where every $y2 in (
  let $d3 := doc("bib.xml")
  for $b3 in $d3//book
  let $y3 := $b3/@year
  for $a3 in $b3/author
  where $a1 = $a3
  return $y3)
satisfies $y2 > %d
return <na>{ $a1 }</na>`, 1980+rng.Intn(25))
	default: // Q6 having-count with random threshold
		return fmt.Sprintf(`
let $d1 := doc("bids.xml")
for $i1 in distinct-values($d1//itemno)
let $c1 := count(
  let $d2 := doc("bids.xml")
  for $i2 in $d2//bidtuple/itemno
  where $i1 = $i2
  return $i2)
where $c1 >= %d
return <pop>{ $i1 }</pop>`, 1+rng.Intn(5))
	}
}

// TestDifferentialPlansAgree: for each random query, every plan alternative
// produces the same output under both engines, and unnested plans run zero
// nested-loop iterations.
func TestDifferentialPlansAgree(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for i := 0; i < rounds; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		eng := NewEngine()
		eng.LoadUseCaseDocuments(20+rng.Intn(60), 1+rng.Intn(3))
		text := randQuery(rng)
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatalf("round %d: compile: %v\nquery: %s", i, err, text)
		}
		if len(q.Plans()) < 2 {
			t.Fatalf("round %d: no unnested alternative produced\nquery: %s", i, text)
		}
		var ref string
		for pi, p := range q.Plans() {
			out, stats, err := q.Execute(p.Name)
			if err != nil {
				t.Fatalf("round %d plan %q: %v", i, p.Name, err)
			}
			if pi == 0 {
				ref = out
			} else if out != ref {
				t.Fatalf("round %d: plan %q output differs from nested baseline\nquery: %s\nnested: %q\n%s: %q",
					i, p.Name, text, ref, p.Name, out)
			}
			if !strings.Contains(p.Name, "nested") && stats.NestedEvals != 0 {
				t.Errorf("round %d: unnested plan %q executed %d nested-loop iterations",
					i, p.Name, stats.NestedEvals)
			}
			sout, _, err := q.ExecuteStreaming(p.Name)
			if err != nil {
				t.Fatalf("round %d plan %q (streaming): %v", i, p.Name, err)
			}
			if sout != out {
				t.Fatalf("round %d: plan %q streaming output differs from materialized", i, p.Name)
			}
		}
	}
}

// TestDifferentialCostRanking: across the random workload the cost model
// always ranks some unnested plan below the nested baseline, so the default
// choice is never the nested plan.
func TestDifferentialCostRanking(t *testing.T) {
	for i := 0; i < 15; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		eng := NewEngine()
		eng.LoadUseCaseDocuments(30+rng.Intn(40), 1+rng.Intn(3))
		q, err := eng.Compile(randQuery(rng))
		if err != nil {
			t.Fatal(err)
		}
		best, err := q.Plan("")
		if err != nil {
			t.Fatal(err)
		}
		if best.Name == "nested" {
			t.Errorf("round %d: cost model picked the nested plan over %v", i, planNames(q))
		}
	}
}
