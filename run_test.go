package nalquery

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// runEngine loads every document the paper queries reference at the given
// size.
func runEngine(size int) *Engine {
	eng := NewEngine()
	eng.LoadUseCaseDocuments(size, 2)
	eng.LoadDBLPDocument(size)
	return eng
}

// collectXML consumes a Results session item by item and concatenates the
// per-item serializations.
func collectXML(t *testing.T, res *Results) string {
	t.Helper()
	var sb strings.Builder
	for {
		item, ok := res.Next()
		if !ok {
			break
		}
		sb.WriteString(item.XML())
	}
	if err := res.Err(); err != nil {
		t.Fatalf("Err after exhaustion: %v", err)
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return sb.String()
}

// TestResultsTypedMatchesExecute: for every paper query and every plan
// alternative, item-by-item serialization of the typed result stream equals
// the Execute output byte for byte — on both the slot engine and the
// reference evaluator.
func TestResultsTypedMatchesExecute(t *testing.T) {
	eng := runEngine(30)
	for id, text := range PaperQueries {
		q, err := eng.Compile(text)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, p := range q.Plans() {
			want, _, err := q.Execute(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", id, p.Name, err)
			}
			res, err := q.Run(context.Background(), WithPlan(p.Name))
			if err != nil {
				t.Fatalf("%s/%s: Run: %v", id, p.Name, err)
			}
			if got := collectXML(t, res); got != want {
				t.Errorf("%s/%s: typed item serialization differs from Execute output", id, p.Name)
			}
			ref, err := q.Run(context.Background(), WithPlan(p.Name), WithReferenceEngine())
			if err != nil {
				t.Fatalf("%s/%s: Run(reference): %v", id, p.Name, err)
			}
			if got := collectXML(t, ref); got != want {
				t.Errorf("%s/%s: reference-engine item stream differs from Execute output", id, p.Name)
			}
		}
	}
}

// TestResultsWriteXMLMatchesExecute: the direct-serialization consumption
// mode produces the Execute bytes too, and reports the same stats.
func TestResultsWriteXMLMatchesExecute(t *testing.T) {
	eng := runEngine(30)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		want, wantStats, err := q.Execute(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		res, err := q.Run(context.Background(), WithPlan(p.Name), WithStats(&st))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil {
			t.Fatalf("plan %q: WriteXML: %v", p.Name, err)
		}
		if sb.String() != want {
			t.Errorf("plan %q: WriteXML bytes differ from Execute output", p.Name)
		}
		if st != wantStats {
			t.Errorf("plan %q: stats %+v, Execute reported %+v", p.Name, st, wantStats)
		}
	}
}

// TestConcurrentRun: one compiled Query serves many simultaneous Run
// sessions — half consuming typed items, half serializing — and every
// session produces the reference output. Run under -race this pins the
// immutability of the compile-time snapshot.
func TestConcurrentRun(t *testing.T) {
	eng := runEngine(40)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	// Loading more documents after Compile must not affect running queries:
	// the engine map mutates, the query's snapshot does not.
	if err := eng.LoadXMLString("late.xml", "<late/>"); err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := q.Run(context.Background())
			if err != nil {
				errs <- err
				return
			}
			var sb strings.Builder
			if g%2 == 0 {
				for item := range res.Seq() {
					sb.WriteString(item.XML())
				}
				if err := res.Err(); err != nil {
					errs <- err
					return
				}
				res.Close()
			} else {
				if err := res.WriteXML(&sb); err != nil {
					errs <- err
					return
				}
			}
			if sb.String() != want {
				errs <- errors.New("concurrent run produced divergent output")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunCancellationMidStream: cancelling the context after consuming a
// few items ends the stream with the context's error, without the pipeline
// having produced anywhere near the full run's tuples.
func TestRunCancellationMidStream(t *testing.T) {
	eng := runEngine(2000)
	// A fully pipelined plan (scan → Ξ): tuples are produced only as items
	// are pulled, so the cancellation point is reached almost immediately.
	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $b1 in $d1//book
return <t>{ $b1/title }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	var full Stats
	if _, full, err = q.Execute(""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var st Stats
	res, err := q.Run(ctx, WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	consumed := 0
	for item, ok := res.Next(); ok; item, ok = res.Next() {
		_ = item
		consumed++
		if consumed == 5 {
			cancel()
		}
	}
	if err := res.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if st.Tuples >= full.Tuples/2 {
		t.Errorf("cancelled run produced %d tuples, full run %d — pipeline drained to completion", st.Tuples, full.Tuples)
	}
}

// TestRunCancellationInsideEngine: with a context cancelled before
// consumption, the engine's own checkpoints — the scan producer and the
// pipeline-breaker drains — terminate a WriteXML drive early, on both a
// pipelined and a breaker-heavy (grouping) plan.
func TestRunCancellationInsideEngine(t *testing.T) {
	eng := runEngine(2000)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []string{"grouping", ""} {
		var full Stats
		if _, full, err = q.Execute(plan); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var st Stats
		res, err := q.Run(ctx, WithPlan(plan), WithStats(&st))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); !errors.Is(err, context.Canceled) {
			t.Fatalf("plan %q: WriteXML error = %v, want context.Canceled", plan, err)
		}
		if st.Tuples >= full.Tuples/2 {
			t.Errorf("plan %q: cancelled run produced %d tuples of %d — engine did not stop early", plan, st.Tuples, full.Tuples)
		}
	}
}

// TestResultsEarlyClose: closing a session mid-stream releases it cleanly —
// no error, no further items, idempotent Close — and a later session of the
// same query is unaffected.
func TestResultsEarlyClose(t *testing.T) {
	eng := runEngine(40)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := res.Next(); !ok {
			t.Fatal("stream ended before two items")
		}
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := res.Next(); ok {
		t.Error("Next returned an item after Close")
	}
	if err := res.Err(); err != nil {
		t.Errorf("Err after early Close: %v", err)
	}
	if err := res.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	want, _, err := q.Execute("")
	if err != nil {
		t.Fatal(err)
	}
	again, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := collectXML(t, again); got != want {
		t.Error("run after an early-closed session diverged")
	}
}

// TestRunSeqEarlyBreak: breaking out of the range-over-func adaptor leaves
// the session consistent.
func TestRunSeqEarlyBreak(t *testing.T) {
	eng := runEngine(40)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range res.Seq() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("consumed %d items, want 3", n)
	}
	if err := res.Close(); err != nil {
		t.Fatalf("Close after break: %v", err)
	}
}

// TestTypedItems: the typed views expose atomic values without
// serialization.
func TestTypedItems(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("bib.xml", `<bib><book><title>A</title></book><book><title>B</title></book></bib>`); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(`let $d1 := doc("bib.xml") return <n>{ count($d1//book) }</n>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var sawCount bool
	for item := range res.Seq() {
		if !item.IsValue() {
			if item.Markup() == "" {
				t.Error("markup item with empty fragment")
			}
			continue
		}
		v := item.Value()
		if v.Kind() == KindInt {
			if n, ok := v.Int(); !ok || n != 2 {
				t.Errorf("Int() = %d,%v, want 2,true", n, ok)
			}
			if f, ok := v.Float(); !ok || f != 2 {
				t.Errorf("Float() = %v,%v, want 2,true", f, ok)
			}
			if v.String() != "2" {
				t.Errorf("String() = %q, want \"2\"", v.String())
			}
			sawCount = true
		}
	}
	if !sawCount {
		t.Error("no integer item in the result stream")
	}

	// Node items: names and string values are readable without serializing.
	q2, err := eng.Compile(`let $d1 := doc("bib.xml") for $t1 in $d1//book/title return <t>{ $t1 }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := q2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	var titles []string
	for item := range res2.Seq() {
		if !item.IsValue() {
			continue
		}
		for _, m := range item.Value().Items() {
			if m.Kind() == KindNode && m.NodeName() == "title" {
				titles = append(titles, m.String())
			}
		}
	}
	if strings.Join(titles, ",") != "A,B" {
		t.Errorf("title string values = %v, want [A B]", titles)
	}

	// An expression selecting nothing views as the empty kind, not as a
	// zero-length sequence.
	q3, err := eng.Compile(`let $d1 := doc("bib.xml") for $b1 in $d1//book return <t>{ $b1/missing }</t>`)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := q3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res3.Close()
	for item := range res3.Seq() {
		if item.IsValue() && item.Value().Kind() != KindEmpty {
			t.Errorf("empty path result Kind = %v, want KindEmpty", item.Value().Kind())
		}
	}
}

// failingStringWriter errors after a few bytes on both entry points. It
// implements WriteString, pinning that WriteXML still buffers it (the
// engine's writes are fire-and-forget; handing such a writer to the engine
// unbuffered would silently drop the error).
type failingStringWriter struct{ n int }

func (f *failingStringWriter) Write(p []byte) (int, error) { return f.WriteString(string(p)) }

func (f *failingStringWriter) WriteString(s string) (int, error) {
	f.n += len(s)
	if f.n > 8 {
		return 0, errors.New("disk full")
	}
	return len(s), nil
}

// TestWriteXMLWriterError: write failures surface from WriteXML even for
// writers that themselves implement WriteString (e.g. *os.File).
func TestWriteXMLWriterError(t *testing.T) {
	eng := runEngine(40)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteXML(&failingStringWriter{}); err == nil {
		t.Error("no error from a failing WriteString writer")
	}
}

// TestPlanErrors: the typed error surface of plan selection and parsing.
func TestPlanErrors(t *testing.T) {
	var empty Query
	if _, err := empty.Plan(""); !errors.Is(err, ErrNoPlan) {
		t.Errorf("Plan on planless query = %v, want ErrNoPlan", err)
	}

	eng := runEngine(10)
	q, err := eng.Compile(QueryQ1Grouping)
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.Plan("no-such-plan")
	if !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("unknown plan error %v does not match ErrUnknownPlan", err)
	}
	var upe *UnknownPlanError
	if !errors.As(err, &upe) {
		t.Fatalf("unknown plan error %T is not *UnknownPlanError", err)
	}
	if upe.Name != "no-such-plan" || len(upe.Have) == 0 {
		t.Errorf("UnknownPlanError = %+v, want requested name and alternatives", upe)
	}
	if _, err := q.Run(context.Background(), WithPlan("no-such-plan")); !errors.Is(err, ErrUnknownPlan) {
		t.Errorf("Run with unknown plan = %v, want ErrUnknownPlan", err)
	}

	_, err = eng.Compile("let $x := ")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("syntax error %v (%T) is not *ParseError", err, err)
	}
	if pe.Line < 1 || pe.Msg == "" {
		t.Errorf("ParseError = %+v, want position and message", pe)
	}
}
