package nalquery

import (
	"strings"
	"testing"
)

// The count bug (Kim's unnesting corrected by outer joins — the paper's
// introduction recounts the history): items WITHOUT bids must appear with
// count 0, which a plain join-based unnesting silently drops. The paper's
// left outer join with defaults (Eqv. 2: g := f(ε) for unmatched left
// tuples) is the fix; these tests pin it end to end.

const countBugDoc = `<auction>
  <items>
    <item><no>1</no></item>
    <item><no>2</no></item>
    <item><no>3</no></item>
  </items>
  <bids>
    <bid><ino>1</ino></bid>
    <bid><ino>1</ino></bid>
    <bid><ino>3</ino></bid>
  </bids>
</auction>`

const countBugQuery = `
let $d1 := doc("auction.xml")
for $i1 in $d1//item/no
let $c1 := count(
  let $d2 := doc("auction.xml")
  for $i2 in $d2//bid/ino
  where $i1 = $i2
  return $i2)
return <item no="{ string($i1) }" bids="{ $c1 }"/>`

// TestCountBugAvoided: every plan alternative reports item 2 with zero
// bids instead of dropping it.
func TestCountBugAvoided(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("auction.xml", countBugDoc); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(countBugQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Plans()) < 2 {
		t.Fatalf("no unnested alternative; plans: %v", planNames(q))
	}
	want := `<itemno="1"bids="2"></item><itemno="2"bids="0"></item><itemno="3"bids="1"></item>`
	for _, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("plan %q: %v", p.Name, err)
		}
		if squash(out) != want {
			t.Errorf("plan %q (applied %v):\ngot  %q\nwant %q", p.Name, p.Applied, squash(out), want)
		}
		if !strings.Contains(out, `bids="0"`) {
			t.Errorf("plan %q dropped the empty group — the count bug", p.Name)
		}
	}
}

// TestCountBugEqv3Rejected: the single-scan grouping plan (Eqv. 3) must
// NOT be offered here — its condition e1 = ΠD(Π(e2)) fails because item 2
// never occurs among the bids. Only the outer-join plan (Eqv. 2) may
// unnest, exactly as the side conditions demand.
func TestCountBugEqv3Rejected(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("auction.xml", countBugDoc); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(countBugQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range q.Plans() {
		for _, a := range p.Applied {
			if a == "Eqv.3" || a == "Eqv.5" {
				t.Errorf("plan %q applied %s although the value sets differ (items vs bids)",
					p.Name, a)
			}
		}
	}
}

// TestSumAvoidsEmptyGroupNull: sums over empty groups follow the same
// defaulting path (sum(ε) = 0 per the engine's aggregate semantics).
func TestSumAvoidsEmptyGroupNull(t *testing.T) {
	eng := NewEngine()
	if err := eng.LoadXMLString("auction.xml", `<auction>
		<items><item><no>1</no></item><item><no>2</no></item></items>
		<bids><bid><ino>1</ino><amt>5</amt></bid><bid><ino>1</ino><amt>7</amt></bid></bids>
	</auction>`); err != nil {
		t.Fatal(err)
	}
	q, err := eng.Compile(`
let $d1 := doc("auction.xml")
for $i1 in $d1//item/no
let $s1 := sum(
  let $d2 := doc("auction.xml")
  for $b2 in $d2//bid
  let $i2 := $b2/ino
  let $a2 := decimal($b2/amt)
  where $i1 = $i2
  return $a2)
return <t no="{ string($i1) }" sum="{ $s1 }"/>`)
	if err != nil {
		t.Fatal(err)
	}
	want := `<tno="1"sum="12"></t><tno="2"sum="0"></t>`
	for _, p := range q.Plans() {
		out, _, err := q.Execute(p.Name)
		if err != nil {
			t.Fatalf("plan %q: %v", p.Name, err)
		}
		if squash(out) != want {
			t.Errorf("plan %q: got %q, want %q", p.Name, squash(out), want)
		}
	}
}
