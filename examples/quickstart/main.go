// Quickstart: load a document, compile a query, inspect the plan
// alternatives the unnesting rewriter produces, and run it through the
// Results session API.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	nalquery "nalquery"
)

const bib = `<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher><price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann</publisher><price>39.95</price>
  </book>
</bib>`

func main() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("bib.xml", bib); err != nil {
		log.Fatal(err)
	}

	// A nested query: for every distinct author, the titles of their books.
	// The inner FLWR block would force nested-loop evaluation; the engine
	// unnests it with the order-preserving equivalences of the paper.
	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $a1 in distinct-values($d1//author)
return
  <author>
    <name>{ $a1 }</name>
    { let $d2 := doc("bib.xml")
      for $b2 in $d2//book[$a1 = author]
      return $b2/title }
  </author>`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan alternatives:")
	for _, p := range q.Plans() {
		applied := ""
		if len(p.Applied) > 0 {
			applied = " (applied: " + strings.Join(p.Applied, ", ") + ")"
		}
		fmt.Printf("  - %s%s\n", p.Name, applied)
	}

	// Run the most optimized plan (here the group-detecting Ξ) and stream
	// the serialized result to stdout. WithStats collects the counters once
	// the stream is drained.
	var stats nalquery.Stats
	res, err := q.Run(context.Background(), nalquery.WithStats(&stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult:")
	if err := res.WriteXML(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\ndocument scans: %d, nested-loop iterations: %d\n",
		stats.DocAccesses, stats.NestedEvals)

	// Compare with the nested baseline: same result, many more scans.
	var nestedStats nalquery.Stats
	nested, err := q.Run(context.Background(),
		nalquery.WithPlan("nested"), nalquery.WithStats(&nestedStats))
	if err != nil {
		log.Fatal(err)
	}
	if err := nested.WriteXML(io.Discard); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nested baseline: %d scans, %d nested-loop iterations\n",
		nestedStats.DocAccesses, nestedStats.NestedEvals)

	// Parameterized variant: declare an external variable, Prepare once,
	// and Bind a different value per run — zero recompilation (see
	// examples/prepared for a concurrent serving loop).
	p, err := eng.Prepare(`
declare variable $minyear external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > $minyear
return $b1/title`)
	if err != nil {
		log.Fatal(err)
	}
	for _, year := range []int{1990, 1999} {
		res, err := p.Run(context.Background(), nalquery.Bind("minyear", year))
		if err != nil {
			log.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("books after %d: %s\n", year, sb.String())
	}
}
