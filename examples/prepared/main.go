// Prepared queries: compile a parameterized query once and serve it from
// many goroutines with per-run bindings — the compile-once/run-many shape
// of a production serving loop. The engine core is race-safe, so documents
// keep loading while requests execute.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"

	nalquery "nalquery"
)

func main() {
	eng := nalquery.NewEngine()
	// The synthetic bib corpus of the paper's evaluation (1000 books).
	eng.LoadUseCaseDocuments(1000, 2)

	// Compile once: the whole parse → normalize → translate → unnest →
	// cost pipeline runs here and never again. References to the external
	// variable compile into typed parameter expressions, so every plan
	// alternative is fixed now; bindings only change selection constants.
	p, err := eng.Prepare(`
declare variable $minyear external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > $minyear
return $b1/title`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared once; external variables: $%s\n", strings.Join(p.Vars(), ", $"))

	// Serve concurrently: every Run is an independent session with its own
	// binding table, so one Prepared handles any number of goroutines.
	var wg sync.WaitGroup
	results := make([]string, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(context.Background(), nalquery.Bind("minyear", 1990+i))
			if err != nil {
				results[i] = "error: " + err.Error()
				return
			}
			defer res.Close()
			titles := 0
			for item := range res.Seq() {
				if item.IsValue() {
					titles++
				}
			}
			results[i] = fmt.Sprintf("minyear=%d: %d titles", 1990+i, titles)
		}(i)
	}
	// Meanwhile the engine may keep loading documents — the copy-on-write
	// core makes this race-clean; the Prepared keeps its snapshot.
	if err := eng.LoadXMLString("extra.xml", `<extra/>`); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(" ", r)
	}

	// Binding mistakes are typed errors, never panics.
	if _, err := p.Run(context.Background()); err != nil {
		fmt.Println("unbound:", err)
	}
	if _, err := p.Run(context.Background(), nalquery.Bind("nope", 1)); err != nil {
		fmt.Println("unknown:", err)
	}
}
