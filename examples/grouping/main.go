// Grouping example (use case XMP): the paper's Sec. 5.1 and 5.2 workloads —
// restructuring a bibliography by author and computing minimal prices per
// title — executed over synthetic documents at increasing sizes, comparing
// all plan alternatives. This reproduces the performance effect of the
// evaluation tables in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	nalquery "nalquery"
)

func main() {
	for _, size := range []int{100, 500} {
		fmt.Printf("=== %d books ===\n", size)
		eng := nalquery.NewEngine()
		eng.LoadUseCaseDocuments(size, 3)

		run(eng, "Q1 group books by author", nalquery.QueryQ1Grouping)
		run(eng, "Q2 minimal price per title", nalquery.QueryQ2Aggregation)
	}

	// The DBLP-like document: authors of articles and theses never author a
	// book, so Eqv. 5's condition fails and the engine offers only the
	// outer-join plan (which must keep authors with an empty title list).
	fmt.Println("=== DBLP-like document (Eqv. 5 inadmissible) ===")
	eng := nalquery.NewEngine()
	eng.LoadDBLPDocument(500)
	q, err := eng.Compile(nalquery.QueryQ1DBLP)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range q.Plans() {
		fmt.Printf("  available plan: %s\n", p.Name)
	}
}

func run(eng *nalquery.Engine, label, query string) {
	q, err := eng.Compile(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", label)
	var ref string
	for _, p := range q.Plans() {
		t0 := time.Now()
		out, stats, err := q.Execute(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		if ref == "" {
			ref = out
		} else if out != ref {
			log.Fatalf("plan %s produced a different result!", p.Name)
		}
		fmt.Printf("  %-12s %10v   scans=%d\n", p.Name, time.Since(t0).Round(time.Microsecond), stats.DocAccesses)
	}
}
