// Streaming: consume a query's result as typed items instead of one
// serialized string — count and inspect values without building markup —
// and cancel a long-running plan mid-stream through the context.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	nalquery "nalquery"
)

func main() {
	// The paper's synthetic use-case documents at 5000 elements: large
	// enough that streaming and cancellation are observable.
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(5000, 2)

	q, err := eng.Compile(`
let $d1 := doc("bib.xml")
for $b1 in $d1//book
return <entry>{ $b1/title }</entry>`)
	if err != nil {
		log.Fatal(err)
	}

	// Typed consumption: walk the item stream, reading node values
	// directly. Markup fragments ("<entry>", "</entry>") interleave with
	// the typed title nodes; nothing is serialized.
	res, err := q.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	titles, markup := 0, 0
	for item := range res.Seq() {
		if !item.IsValue() {
			markup++
			continue
		}
		for _, v := range item.Value().Items() {
			if v.Kind() == nalquery.KindNode && v.NodeName() == "title" {
				titles++
			}
		}
	}
	if err := res.Err(); err != nil {
		log.Fatal(err)
	}
	res.Close()
	fmt.Printf("typed pass: %d titles, %d markup fragments, zero serialization\n", titles, markup)

	// Cancellation: stop the same run after the first few items. The
	// engine's scans poll the context, so the pipeline terminates without
	// draining the remaining thousands of books.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var st nalquery.Stats
	res2, err := q.Run(ctx, nalquery.WithStats(&st))
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	t0 := time.Now()
	for range res2.Seq() {
		if n++; n == 10 {
			cancel()
		}
	}
	fmt.Printf("cancelled after %d items in %s: err=%v, %d scan tuples produced (of %d books)\n",
		n, time.Since(t0).Round(time.Microsecond), res2.Err(), st.Tuples, titles)
}
