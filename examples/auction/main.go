// Auction example (use case R): queries over the users/items/bids documents
// of the XQuery use cases — the paper's Sec. 5.6 "popular items" query plus
// further analytical queries exercising aggregation and joins through the
// public API.
package main

import (
	"fmt"
	"log"

	nalquery "nalquery"
)

func main() {
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(300, 2)

	// The paper's Query 1.4.4.14: items with at least three bids
	// (aggregation in the where clause — a SQL HAVING in XQuery clothing).
	popular, err := eng.Query(nalquery.QueryQ6HavingCount)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items with >= 3 bids:")
	fmt.Println(clip(popular, 200))

	// Highest bid per item: grouping + max aggregation, unnested via Eqv. 3.
	highest, err := eng.Query(`
let $d1 := document("bids.xml")
for $i1 in distinct-values($d1//itemno)
let $m1 := max(let $d2 := document("bids.xml")
               for $b2 in $d2//bidtuple
               let $i2 := $b2/itemno
               let $a2 := $b2/bid
               where $i1 = $i2
               return decimal($a2))
return <high item="{ $i1 }">{ $m1 }</high>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhighest bid per item:")
	fmt.Println(clip(highest, 200))

	// Users who placed at least one bid: an existential quantifier over a
	// second document, unnested into an order-preserving semijoin (Eqv. 6).
	q, err := eng.Compile(`
let $d1 := document("users.xml")
for $u1 in $d1//usertuple/userid
where some $u2 in (let $d2 := document("bids.xml")
                   for $u3 in $d2//bidtuple/userid
                   return $u3)
      satisfies $u1 = $u2
return <active>{ $u1 }</active>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nactive bidders (per plan):")
	for _, p := range q.Plans() {
		out, stats, err := q.Execute(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s scans=%d  %s\n", p.Name, stats.DocAccesses, clip(out, 80))
	}

	// Items nobody has bid on: universal quantification → anti-semijoin
	// (Eqv. 7) or the count-based plan (Eqv. 9).
	idle, err := eng.Query(`
let $d1 := document("items.xml")
for $i1 in distinct-values($d1//itemtuple/itemno)
where every $b2 in (let $d2 := document("bids.xml")
                    for $i3 in $d2//bidtuple/itemno
                    where $i3 = $i1
                    return $i3)
      satisfies false()
return <idle>{ $i1 }</idle>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nitems without bids:")
	fmt.Println(clip(idle, 200))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
