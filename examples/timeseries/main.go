// Timeseries: the ordered-context workload the paper's introduction
// motivates ("applications dealing with time series, like finance, ...
// might also benefit from the unnesting techniques proposed in this
// paper"). Quotes arrive in time order; queries that group, aggregate and
// quantify over them must keep that order — which rules out the classical
// unordered unnesting techniques and calls for the order-preserving
// equivalences this library implements.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	nalquery "nalquery"
)

// genQuotes builds a tick stream in time order: rounds of quotes over a
// fixed symbol universe with deterministic pseudo-random prices.
func genQuotes(rounds int) string {
	symbols := []string{"AAA", "BBB", "CCC", "DDD"}
	var sb strings.Builder
	sb.WriteString("<quotes>\n")
	seed := uint64(42)
	next := func(lo, hi int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return lo + int(seed>>33)%(hi-lo+1)
	}
	t := 0
	for r := 0; r < rounds; r++ {
		for _, sym := range symbols {
			price := 100 + next(-15, 15)
			switch sym {
			case "CCC":
				// CCC never trades below 100 — the steady stock the
				// universal-quantifier screen should single out.
				price = 100 + next(0, 15)
			case "DDD":
				// DDD trends down so the screens differentiate.
				price = 95 - r%10
			}
			fmt.Fprintf(&sb, "  <quote><time>%04d</time><symbol>%s</symbol><price>%d</price></quote>\n",
				t, sym, price)
			t++
		}
	}
	sb.WriteString("</quotes>")
	return sb.String()
}

func run(eng *nalquery.Engine, title, text string) {
	fmt.Printf("== %s\n", title)
	q, err := eng.Compile(text)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range q.Plans() {
		t0 := time.Now()
		out, stats, err := q.Execute(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  plan %-14s %8s  doc-scans=%-3d nested-evals=%-5d output=%d bytes\n",
			p.Name, time.Since(t0).Round(time.Microsecond), stats.DocAccesses,
			stats.NestedEvals, len(out))
	}
	best, _ := q.Plan("")
	out, _, err := q.Execute("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chosen: %s\n", best.Name)
	preview := strings.Join(strings.Fields(out), " ")
	if len(preview) > 160 {
		preview = preview[:160] + "…"
	}
	fmt.Printf("  result: %s\n\n", preview)
}

func main() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("quotes.xml", genQuotes(60)); err != nil {
		log.Fatal(err)
	}

	// Per-symbol tick history, ticks in arrival order inside each group —
	// the Q1 pattern on a time series. The nested plan rescans the stream
	// once per symbol; the unnested plans scan it once.
	run(eng, "per-symbol history (grouping)", `
let $d1 := doc("quotes.xml")
for $s1 in distinct-values($d1//symbol)
return
  <series>
    <sym>{ $s1 }</sym>
    { let $d2 := doc("quotes.xml")
      for $q2 in $d2//quote
      let $s2 := $q2/symbol
      let $p2 := $q2/price
      where $s1 = $s2
      return $p2 }
  </series>`)

	// Minimum price per symbol — aggregation in the head (the Q2 pattern).
	run(eng, "low-water marks (aggregation)", `
let $d1 := doc("quotes.xml")
for $s1 in distinct-values($d1//symbol)
let $m1 := min(
  let $d2 := doc("quotes.xml")
  for $q2 in $d2//quote
  let $s2 := $q2/symbol
  let $c2 := decimal($q2/price)
  where $s1 = $s2
  return $c2)
return <low><sym>{ $s1 }</sym><min>{ $m1 }</min></low>`)

	// Symbols that never traded below 90 — universal quantification over
	// the tick stream (the Q5 pattern: anti-semijoin or counting plan).
	run(eng, "never dipped below 90 (universal quantifier)", `
let $d1 := doc("quotes.xml")
for $s1 in distinct-values($d1//symbol)
where every $p2 in (
    let $d3 := doc("quotes.xml")
    for $q3 in $d3//quote
    let $s3 := $q3/symbol
    let $p3 := $q3/price
    where $s1 = $s3
    return $p3)
  satisfies decimal($p2) > 90
return <steady>{ $s1 }</steady>`)

	// Symbols with at least one tick above 110 — existential quantifier
	// (the Q3 pattern: semijoin plan).
	run(eng, "spiked above 110 (existential quantifier)", `
let $d1 := doc("quotes.xml")
for $s1 in distinct-values($d1//symbol)
where some $p2 in (
    let $d3 := doc("quotes.xml")
    for $q3 in $d3//quote
    let $s3 := $q3/symbol
    let $p3 := $q3/price
    where $s1 = $s3
    return $p3)
  satisfies decimal($p2) > 110
return <spiker>{ $s1 }</spiker>`)
}
