// Reporting: the frontend extensions working together — order by
// (descending), positional for-bindings (at $i), conditionals
// (if/then/else), positional path predicates and the string builtins —
// on top of the order-preserving engine.
package main

import (
	"fmt"
	"log"

	nalquery "nalquery"
)

const catalog = `<catalog>
  <product><name>widget mk I</name><price>19.50</price><stock>3</stock></product>
  <product><name>widget mk II</name><price>42.00</price><stock>0</stock></product>
  <product><name>gizmo</name><price>7.25</price><stock>120</stock></product>
  <product><name>doohickey deluxe</name><price>99.99</price><stock>1</stock></product>
  <product><name>contraption</name><price>42.00</price><stock>17</stock></product>
</catalog>`

func run(eng *nalquery.Engine, title, text string) {
	q, err := eng.Compile(text)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	out, stats, err := q.Execute("")
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Printf("== %s (doc-scans=%d)\n%s\n\n", title, stats.DocAccesses, out)
}

func main() {
	eng := nalquery.NewEngine()
	if err := eng.LoadXMLString("catalog.xml", catalog); err != nil {
		log.Fatal(err)
	}

	// Price list, most expensive first; ties broken by document order
	// (the sort is stable). Each line keeps the product's original catalog
	// position through the positional binding — assigned before the sort.
	run(eng, "price list (order by descending + at $i)", `
let $d := doc("catalog.xml")
for $p at $i in $d//product
order by decimal($p/price) descending
return <line pos="{ $i }">{ upper-case(string($p/name)) }: { string($p/price) }</line>`)

	// Availability report with conditional labels.
	run(eng, "availability (if/then/else)", `
let $d := doc("catalog.xml")
for $p in $d//product
return <item>
  <n>{ string($p/name) }</n>
  <status>{ if (decimal($p/stock) = 0) then "SOLD OUT"
            else if (decimal($p/stock) < 5) then "LOW" else "OK" }</status>
</item>`)

	// The cheapest product: order by + positional predicate on the sorted
	// result is not expressible, but a min() aggregate with a grouping plan
	// is — the engine unnests it.
	run(eng, "cheapest (aggregation)", `
let $d := doc("catalog.xml")
for $n in distinct-values($d//product/name)
let $m := min(
  let $d2 := doc("catalog.xml")
  for $p2 in $d2//product
  let $n2 := $p2/name
  let $c2 := decimal($p2/price)
  where $n = $n2
  return $c2)
where $m < 10
return <cheap>{ concat($n, " at ", $m) }</cheap>`)

	// First word of each name via the string builtins.
	run(eng, "short names (substring-before)", `
let $d := doc("catalog.xml")
for $p in $d//product
return <s>{ if (contains(string($p/name), " "))
            then substring-before(string($p/name), " ")
            else string($p/name) }</s>`)
}
