// Large-document example: generate a sizable bibliography, persist it in
// the binary store format, reload it, and run the Sec. 5.1 grouping query
// through both execution engines — showing that the unnested plans stay
// interactive where the nested plan would take minutes.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	nalquery "nalquery"
	"nalquery/internal/dom"
	"nalquery/internal/store"
	"nalquery/internal/xmlgen"
)

func main() {
	const books = 5000

	dir, err := os.MkdirTemp("", "nalquery-largedoc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Generate and persist.
	cfg := xmlgen.DefaultConfig(books)
	cfg.AuthorsPerBook = 5
	doc := xmlgen.Bib(cfg)
	path := filepath.Join(dir, "bib.nalb")
	t0 := time.Now()
	if err := store.SaveFile(path, doc); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	xmlBytes := len(dom.XMLString(doc.RootElement()))
	fmt.Printf("generated %d books: xml %d bytes, binary store %d bytes (saved in %v)\n",
		books, xmlBytes, info.Size(), time.Since(t0).Round(time.Millisecond))

	// Reload from the store.
	t0 = time.Now()
	loaded, err := store.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d nodes in %v\n", loaded.NumNodes(), time.Since(t0).Round(time.Millisecond))

	eng := nalquery.NewEngine()
	eng.LoadDocument(loaded)

	q, err := eng.Compile(nalquery.QueryQ1Grouping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan costs (estimated):")
	for _, p := range q.Plans() {
		fmt.Printf("  %-12s %14.0f\n", p.Name, p.EstimatedCost)
	}

	// Execute the cheapest plan under both engines. The nested plan at this
	// size would run for minutes (it scans the document once per author);
	// we demonstrate it on a small prefix instead.
	best, _ := q.Plan("")
	t0 = time.Now()
	out, stats, err := q.Execute(best.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s (materialized): %v, %d scans, %d bytes of result\n",
		best.Name, time.Since(t0).Round(time.Millisecond), stats.DocAccesses, len(out))

	t0 = time.Now()
	out2, _, err := q.ExecuteStreaming(best.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (streaming):    %v, identical result: %v\n",
		best.Name, time.Since(t0).Round(time.Millisecond), out == out2)

	// The nested baseline on a small document, for contrast.
	small := nalquery.NewEngine()
	small.LoadUseCaseDocuments(500, 5)
	qs, err := small.Compile(nalquery.QueryQ1Grouping)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	_, nstats, err := qs.Execute("nested")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnested baseline at 500 books: %v with %d document scans — the\n"+
		"quadratic behaviour the unnesting equivalences remove.\n",
		time.Since(t0).Round(time.Millisecond), nstats.DocAccesses)
}
