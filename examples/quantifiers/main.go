// Quantifiers example: the paper's Sec. 5.3–5.5 workloads — existential and
// universal quantification in an ordered context — with the plan
// alternatives the unnesting rewriter derives (semijoin, anti-semijoin,
// count-based grouping) and proof that every plan preserves document order.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	nalquery "nalquery"
)

func main() {
	eng := nalquery.NewEngine()
	eng.LoadUseCaseDocuments(400, 2)

	show(eng, "Q3: books with reviews (some … satisfies)", nalquery.QueryQ3Existential)
	show(eng, "Q4: authors of books co-authored by Suciu (exists)", nalquery.QueryQ4Exists)
	show(eng, "Q5: authors whose books all appeared after 1993 (every)", nalquery.QueryQ5Universal)
}

func show(eng *nalquery.Engine, label, query string) {
	fmt.Println("==", label)
	q, err := eng.Compile(query)
	if err != nil {
		log.Fatal(err)
	}
	var ref string
	for _, p := range q.Plans() {
		t0 := time.Now()
		out, stats, err := q.Execute(p.Name)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		if ref == "" {
			ref = out
		} else if out != ref {
			log.Fatalf("plan %s changed the (ordered!) result", p.Name)
		}
		rules := strings.Join(p.Applied, ",")
		if rules == "" {
			rules = "-"
		}
		fmt.Printf("  %-14s %10v  scans=%-4d rules=%s\n",
			p.Name, elapsed.Round(time.Microsecond), stats.DocAccesses, rules)
	}
	fmt.Printf("  result (first 120 bytes): %s\n\n", clip(ref, 120))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
