package nalquery

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNoPlan reports that a Query carries no plan alternatives to select
// from.
var ErrNoPlan = errors.New("nalquery: query has no plan alternatives")

// ErrUnknownPlan is the sentinel matched (via errors.Is) by the
// *UnknownPlanError returned when a named plan alternative does not exist.
var ErrUnknownPlan = errors.New("nalquery: no such plan")

// UnknownPlanError reports a plan name that matches none of a query's
// alternatives. It matches ErrUnknownPlan under errors.Is.
type UnknownPlanError struct {
	// Name is the plan name that was requested.
	Name string
	// Have lists the names of the query's plan alternatives.
	Have []string
}

func (e *UnknownPlanError) Error() string {
	return fmt.Sprintf("nalquery: no plan %q (have %s)", e.Name, strings.Join(e.Have, ", "))
}

// Is implements the errors.Is protocol: every UnknownPlanError matches the
// ErrUnknownPlan sentinel.
func (e *UnknownPlanError) Is(target error) bool { return target == ErrUnknownPlan }

// ErrUnboundVariable is the sentinel matched (via errors.Is) by the
// *BindError returned when a Run leaves a declared external variable
// without a binding.
var ErrUnboundVariable = errors.New("nalquery: external variable not bound")

// ErrUnknownVariable is the sentinel matched (via errors.Is) by the
// *BindError returned when a Bind names a variable the query does not
// declare external.
var ErrUnknownVariable = errors.New("nalquery: no such external variable")

// ErrBindValue is the sentinel matched (via errors.Is) by the *BindError
// returned when a Bind carries a Go value the engine's data model cannot
// represent.
var ErrBindValue = errors.New("nalquery: unsupported binding value")

// BindError reports a failed external-variable binding: an unknown or
// unbound variable, or a value of an unsupported type. It surfaces from Run
// (never as a panic) and matches the corresponding sentinel —
// ErrUnboundVariable, ErrUnknownVariable or ErrBindValue — under errors.Is.
type BindError struct {
	// Var is the external variable's name.
	Var string
	// Detail describes the failure (e.g. the rejected Go type).
	Detail string

	reason error
}

func (e *BindError) Error() string {
	msg := fmt.Sprintf("%v: $%s", e.reason, e.Var)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Is implements the errors.Is protocol against the binding sentinels.
func (e *BindError) Is(target error) bool { return target == e.reason }

// Unwrap returns the sentinel classifying the failure.
func (e *BindError) Unwrap() error { return e.reason }

// ErrInternal is the sentinel matched (via errors.Is) by the
// *InternalError produced when query evaluation panics. The panic is
// recovered at the public Run/Results boundary — one poison query fails
// its own run instead of taking the process down.
var ErrInternal = errors.New("nalquery: internal error")

// InternalError reports an evaluator panic recovered at the Run/Results
// boundary: Query.Run, Prepared.Run, Results.Next/WriteXML and the
// deprecated Execute wrappers all convert a panicking plan into this error
// instead of propagating the panic. It matches ErrInternal under errors.Is
// and carries everything a serving layer needs to log the poison query.
type InternalError struct {
	// Query is the text of the query whose evaluation panicked.
	Query string
	// Plan is the plan alternative that was running ("" if the panic
	// happened before plan selection).
	Plan string
	// Panic is the recovered panic value.
	Panic any
	// Stack is the goroutine stack captured at the recovery point; it
	// includes the panic origin.
	Stack []byte
}

func (e *InternalError) Error() string {
	if e.Plan == "" {
		return fmt.Sprintf("nalquery: internal error: %v", e.Panic)
	}
	return fmt.Sprintf("nalquery: internal error evaluating plan %q: %v", e.Plan, e.Panic)
}

// Is implements the errors.Is protocol: every InternalError matches the
// ErrInternal sentinel.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Unwrap exposes the panic value when it is itself an error, so callers can
// errors.Is/As through to a typed cause (panic(err) inside an evaluator).
func (e *InternalError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// ErrResourceExhausted is the sentinel matched (via errors.Is) by the
// *ResourceError produced when a run crosses its resource budget (see
// WithMaxMemory / WithMaxTuples). Like a cancellation it fails only the
// offending run — the engine and every concurrent run keep working.
var ErrResourceExhausted = errors.New("nalquery: resource budget exhausted")

// ResourceError reports a run aborted by its resource budget: a pipeline
// breaker, scan, dedup table or result serialization tried to materialize
// past the configured byte or tuple limit. It surfaces from Run, Results
// consumption and WriteXML — never as a panic, never as a silent partial
// result — and matches ErrResourceExhausted under errors.Is.
type ResourceError struct {
	// Query is the text of the query whose run tripped.
	Query string
	// Plan is the plan alternative that was running.
	Plan string
	// Op labels the operator boundary that tripped: "scan", "build",
	// "probe", "sort", "group", "partition", "dedup" or "serialize".
	Op string
	// Bytes and Tuples are the run's charge counters at the trip.
	Bytes, Tuples int64
	// MaxBytes and MaxTuples are the run's limits (0 = unlimited; both
	// zero means the trip was forced by a fault-injection hook).
	MaxBytes, MaxTuples int64
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("nalquery: resource budget exhausted at %s in plan %q (%d bytes, %d tuples; limits %d bytes, %d tuples)",
		e.Op, e.Plan, e.Bytes, e.Tuples, e.MaxBytes, e.MaxTuples)
}

// Is implements the errors.Is protocol: every ResourceError matches the
// ErrResourceExhausted sentinel.
func (e *ResourceError) Is(target error) bool { return target == ErrResourceExhausted }

// ParseError is a query syntax error with its source position.
type ParseError struct {
	// Line is the 1-based line of the query text the parser stopped at.
	Line int
	// Col is the 1-based column (byte offset within the line) the parser
	// stopped at.
	Col int
	// Msg describes the syntax error.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// ErrTranslate is the sentinel matched (via errors.Is) by the
// *TranslateError returned when a syntactically valid query falls outside
// the supported XQuery subset.
var ErrTranslate = errors.New("nalquery: query not translatable")

// TranslateError reports a query the compiler rejects after parsing: the
// expression is syntactically valid XQuery but outside the subset the
// translator supports (or a shape the normalizer should have rewritten).
// It surfaces from Compile/Prepare — never as a panic — and matches
// ErrTranslate under errors.Is.
type TranslateError struct {
	// Msg describes the rejection.
	Msg string
}

func (e *TranslateError) Error() string { return "nalquery: translate: " + e.Msg }

// Is implements the errors.Is protocol: every TranslateError matches the
// ErrTranslate sentinel.
func (e *TranslateError) Is(target error) bool { return target == ErrTranslate }
