package nalquery

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNoPlan reports that a Query carries no plan alternatives to select
// from.
var ErrNoPlan = errors.New("nalquery: query has no plan alternatives")

// ErrUnknownPlan is the sentinel matched (via errors.Is) by the
// *UnknownPlanError returned when a named plan alternative does not exist.
var ErrUnknownPlan = errors.New("nalquery: no such plan")

// UnknownPlanError reports a plan name that matches none of a query's
// alternatives. It matches ErrUnknownPlan under errors.Is.
type UnknownPlanError struct {
	// Name is the plan name that was requested.
	Name string
	// Have lists the names of the query's plan alternatives.
	Have []string
}

func (e *UnknownPlanError) Error() string {
	return fmt.Sprintf("nalquery: no plan %q (have %s)", e.Name, strings.Join(e.Have, ", "))
}

// Is implements the errors.Is protocol: every UnknownPlanError matches the
// ErrUnknownPlan sentinel.
func (e *UnknownPlanError) Is(target error) bool { return target == ErrUnknownPlan }

// ErrUnboundVariable is the sentinel matched (via errors.Is) by the
// *BindError returned when a Run leaves a declared external variable
// without a binding.
var ErrUnboundVariable = errors.New("nalquery: external variable not bound")

// ErrUnknownVariable is the sentinel matched (via errors.Is) by the
// *BindError returned when a Bind names a variable the query does not
// declare external.
var ErrUnknownVariable = errors.New("nalquery: no such external variable")

// ErrBindValue is the sentinel matched (via errors.Is) by the *BindError
// returned when a Bind carries a Go value the engine's data model cannot
// represent.
var ErrBindValue = errors.New("nalquery: unsupported binding value")

// BindError reports a failed external-variable binding: an unknown or
// unbound variable, or a value of an unsupported type. It surfaces from Run
// (never as a panic) and matches the corresponding sentinel —
// ErrUnboundVariable, ErrUnknownVariable or ErrBindValue — under errors.Is.
type BindError struct {
	// Var is the external variable's name.
	Var string
	// Detail describes the failure (e.g. the rejected Go type).
	Detail string

	reason error
}

func (e *BindError) Error() string {
	msg := fmt.Sprintf("%v: $%s", e.reason, e.Var)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Is implements the errors.Is protocol against the binding sentinels.
func (e *BindError) Is(target error) bool { return target == e.reason }

// Unwrap returns the sentinel classifying the failure.
func (e *BindError) Unwrap() error { return e.reason }

// ParseError is a query syntax error with its source position.
type ParseError struct {
	// Line is the 1-based line of the query text the parser stopped at.
	Line int
	// Msg describes the syntax error.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery: line %d: %s", e.Line, e.Msg)
}
