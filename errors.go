package nalquery

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNoPlan reports that a Query carries no plan alternatives to select
// from.
var ErrNoPlan = errors.New("nalquery: query has no plan alternatives")

// ErrUnknownPlan is the sentinel matched (via errors.Is) by the
// *UnknownPlanError returned when a named plan alternative does not exist.
var ErrUnknownPlan = errors.New("nalquery: no such plan")

// UnknownPlanError reports a plan name that matches none of a query's
// alternatives. It matches ErrUnknownPlan under errors.Is.
type UnknownPlanError struct {
	// Name is the plan name that was requested.
	Name string
	// Have lists the names of the query's plan alternatives.
	Have []string
}

func (e *UnknownPlanError) Error() string {
	return fmt.Sprintf("nalquery: no plan %q (have %s)", e.Name, strings.Join(e.Have, ", "))
}

// Is implements the errors.Is protocol: every UnknownPlanError matches the
// ErrUnknownPlan sentinel.
func (e *UnknownPlanError) Is(target error) bool { return target == ErrUnknownPlan }

// ParseError is a query syntax error with its source position.
type ParseError struct {
	// Line is the 1-based line of the query text the parser stopped at.
	Line int
	// Msg describes the syntax error.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery: line %d: %s", e.Line, e.Msg)
}
