package nalquery

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"nalquery/internal/schema"
)

// The prepared-query surface: external-variable binding must be
// observationally equivalent to compiling the literal-substituted query
// text — on every plan alternative, on both engines — while performing
// zero recompilations and staying race-clean under concurrent binding.

// paramCase parameterizes one paper query: template contains the marker
// %P% where the prepared form reads the external variable $xv and the
// literal form substitutes lit. bind is the Go value whose engine
// representation equals lit.
type paramCase struct {
	id       string
	template string
	lit      string
	bind     any
}

// paramCases covers every paper query (Sec. 5): queries with a natural
// constant (q4's author, q5's year, q6's count threshold) parameterize it;
// the others gain a parametric selection on the outer variable, which
// filters nothing under the chosen binding but exercises the same
// Param-vs-literal compilation difference.
func paramCases() []paramCase {
	with := func(text, where string) string {
		return strings.Replace(text, "return", where+"\nreturn", 1)
	}
	return []paramCase{
		{"q1", with(QueryQ1Grouping, `where $a1 >= %P%`), `""`, ""},
		{"q1dblp", with(QueryQ1DBLP, `where $a1 >= %P%`), `""`, ""},
		{"q2", with(QueryQ2Aggregation, `where $t1 >= %P%`), `""`, ""},
		{"q3", strings.Replace(QueryQ3Existential,
			"satisfies $t1 = $t2", "satisfies $t1 = $t2 and $t1 >= %P%", 1), `""`, ""},
		{"q4", strings.Replace(QueryQ4Exists,
			`contains($a2, "Suciu")`, "contains($a2, %P%)", 1), `"Suciu"`, "Suciu"},
		{"q5", strings.Replace(QueryQ5Universal,
			"$b2/@year > 1993", "$b2/@year > %P%", 1), "1993", 1993},
		{"q6", strings.Replace(QueryQ6HavingCount,
			">= 3", ">= %P%", 1), "3", 3},
	}
}

func (c paramCase) preparedText() string {
	return "declare variable $xv external;\n" + strings.ReplaceAll(c.template, "%P%", "$xv")
}

func (c paramCase) literalText() string {
	return strings.ReplaceAll(c.template, "%P%", c.lit)
}

// runToString executes one plan of a session source and serializes it.
func runToString(t *testing.T, run func() (*Results, error)) string {
	t.Helper()
	res, err := run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	defer res.Close()
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	return sb.String()
}

// TestPreparedDifferentialAllPlans is the tentpole equivalence pin: for
// every parameterized paper query, Prepare+Bind produces results identical
// to compiling the literal-substituted text — on every plan alternative,
// on both the slot engine and the reference evaluator — and derives the
// same plan set (bindings never change the alternatives).
func TestPreparedDifferentialAllPlans(t *testing.T) {
	e := tinyEngine(t)
	e.LoadDBLPDocument(40)
	for _, c := range paramCases() {
		prep, err := e.Prepare(c.preparedText())
		if err != nil {
			t.Fatalf("%s: prepare: %v", c.id, err)
		}
		lit, err := e.Compile(c.literalText())
		if err != nil {
			t.Fatalf("%s: compile literal: %v", c.id, err)
		}
		if got, want := planNames(prep.Query()), planNames(lit); strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: plan sets differ: prepared %v, literal %v", c.id, got, want)
			continue
		}
		for _, p := range lit.Plans() {
			for _, ref := range []bool{false, true} {
				opts := []RunOption{WithPlan(p.Name)}
				if ref {
					opts = append(opts, WithReferenceEngine())
				}
				want := runToString(t, func() (*Results, error) {
					return lit.Run(context.Background(), opts...)
				})
				got := runToString(t, func() (*Results, error) {
					return prep.Run(context.Background(), append(opts, Bind("xv", c.bind))...)
				})
				if got != want {
					t.Errorf("%s/%s (ref=%v): prepared result differs from literal substitution\nlit:  %.200q\nprep: %.200q",
						c.id, p.Name, ref, want, got)
				}
			}
		}
	}
}

// TestPreparedZeroRecompiles pins the compile-once/run-many contract with
// the engine's compile counter: N runs of one Prepared with N distinct
// bindings perform zero additional compilation passes.
func TestPreparedZeroRecompiles(t *testing.T) {
	e := tinyEngine(t)
	prep, err := e.Prepare(`
declare variable $minyear external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where $b1/@year > $minyear
return $b1/title`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	before := e.compiles.Load()
	for i := 0; i < 50; i++ {
		res, err := prep.Run(context.Background(), Bind("minyear", 1900+i))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		res.Close()
	}
	if after := e.compiles.Load(); after != before {
		t.Fatalf("50 runs of one Prepared recompiled %d times", after-before)
	}
}

// TestPreparedBindingsSelect verifies bindings actually steer the
// parametric predicate (not just re-run one constant plan).
func TestPreparedBindingsSelect(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("n.xml", `<ns><n v="1"/><n v="2"/><n v="3"/></ns>`); err != nil {
		t.Fatal(err)
	}
	prep, err := e.Prepare(`
declare variable $min external;
let $d := doc("n.xml")
for $n in $d//n
where $n/@v >= $min
return <k>{ $n/@v }</k>`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for min, want := range map[int]int{1: 3, 2: 2, 3: 1, 4: 0} {
		out := runToString(t, func() (*Results, error) {
			return prep.Run(context.Background(), Bind("min", min))
		})
		if got := strings.Count(out, "<k>"); got != want {
			t.Errorf("min=%d: %d results, want %d (%q)", min, got, want, out)
		}
	}
}

// TestPreparedSequenceBinding binds a sequence value: the membership
// comparison takes XQuery's existential semantics over it.
func TestPreparedSequenceBinding(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("a.xml", `<as><a>alice</a><a>bob</a><a>carol</a></as>`); err != nil {
		t.Fatal(err)
	}
	prep, err := e.Prepare(`
declare variable $names external;
let $d1 := doc("a.xml")
for $a1 in distinct-values($d1//a)
where $a1 = $names
return <m>{ $a1 }</m>`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	out := runToString(t, func() (*Results, error) {
		return prep.Run(context.Background(), Bind("names", []any{"alice", "carol"}))
	})
	if !strings.Contains(out, "alice") || !strings.Contains(out, "carol") || strings.Contains(out, "bob") {
		t.Errorf("sequence binding missed members: %q", out)
	}
	none := runToString(t, func() (*Results, error) {
		return prep.Run(context.Background(), Bind("names", []any{"Nobody"}))
	})
	if strings.Contains(none, "<m>") {
		t.Errorf("empty match expected, got %q", none)
	}
}

// TestPreparedShadowing: a clause binding of the same name shadows the
// external variable, matching XQuery scoping.
func TestPreparedShadowing(t *testing.T) {
	e := tinyEngine(t)
	prep, err := e.Prepare(`
declare variable $t external;
let $d1 := doc("bib.xml")
for $t in $d1//book/title
return <t>{ string($t) }</t>`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	out := runToString(t, func() (*Results, error) {
		return prep.Run(context.Background(), Bind("t", "bound-value"))
	})
	if strings.Contains(out, "bound-value") {
		t.Errorf("external binding leaked through a shadowing for clause: %q", out)
	}
	if !strings.Contains(out, "<t>") {
		t.Errorf("shadowed loop produced no results: %q", out)
	}

	// Shadowing ends with the shadowing scope: after a quantifier whose
	// variable shadows the external, a later reference resolves to the
	// external again (not to an unbound tuple attribute).
	prep2, err := e.Prepare(`
declare variable $y external;
let $d1 := doc("bib.xml")
for $b1 in $d1//book
where (some $y in $b1/author satisfies $y/last = "Nosuch") or $b1/@year > $y
return $b1/title`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	out2 := runToString(t, func() (*Results, error) {
		return prep2.Run(context.Background(), Bind("y", 0))
	})
	if got := strings.Count(out2, "<title>"); got != 4 {
		t.Errorf("external reference after quantifier scope: %d titles, want all 4 (%q)", got, out2)
	}
}

// TestBindErrors pins the typed binding-error surface: unbound, unknown
// and ill-typed bindings are *BindError values matching their sentinels —
// surfaced at Run time, never as a panic.
func TestBindErrors(t *testing.T) {
	e := tinyEngine(t)
	prep, err := e.Prepare(`
declare variable $a external;
declare variable $b external;
let $d1 := doc("bib.xml")
for $t1 in $d1//book/title
where $a <= $t1 and $t1 <= $b
return $t1`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ctx := context.Background()

	_, err = prep.Run(ctx, Bind("a", "x"))
	if !errors.Is(err, ErrUnboundVariable) {
		t.Errorf("missing $b: got %v, want ErrUnboundVariable", err)
	}
	var be *BindError
	if !errors.As(err, &be) || be.Var != "b" {
		t.Errorf("missing $b: got %v, want *BindError for b", err)
	}

	_, err = prep.Run(ctx, Bind("a", "x"), Bind("b", "y"), Bind("nope", 1))
	if !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("unknown $nope: got %v, want ErrUnknownVariable", err)
	}

	_, err = prep.Run(ctx, Bind("a", struct{ X int }{1}), Bind("b", "y"))
	if !errors.Is(err, ErrBindValue) {
		t.Errorf("struct binding: got %v, want ErrBindValue", err)
	}

	// Unsigned values bind in range and error beyond int64 instead of
	// silently wrapping negative.
	if res, err := prep.Run(ctx, Bind("a", uint64(5)), Bind("b", "y")); err != nil {
		t.Errorf("uint64 binding: %v", err)
	} else {
		res.Close()
	}
	if _, err := prep.Run(ctx, Bind("a", uint64(1)<<63), Bind("b", "y")); !errors.Is(err, ErrBindValue) {
		t.Errorf("overflowing uint64: got %v, want ErrBindValue", err)
	}

	// A query without externals rejects any Bind.
	plain, err := e.Compile(`let $d1 := doc("bib.xml") for $t1 in $d1//book/title return $t1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Run(ctx, Bind("a", 1)); !errors.Is(err, ErrUnknownVariable) {
		t.Errorf("bind on plain query: got %v, want ErrUnknownVariable", err)
	}

	// The deprecated Execute path cannot bind — it must surface the typed
	// error, not panic or return wrong results.
	if _, _, err := prep.Query().Execute(""); !errors.Is(err, ErrUnboundVariable) {
		t.Errorf("Execute on parameterized query: got %v, want ErrUnboundVariable", err)
	}

	// Rebinding keeps the last value; nil binds the empty sequence.
	res, err := prep.Run(ctx, Bind("a", "zzz"), Bind("b", "y"), Bind("a", ""))
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	res.Close()
	// Last-wins extends to conversion errors: a valid rebind supersedes an
	// earlier ill-typed one.
	if res, err := prep.Run(ctx, Bind("a", struct{}{}), Bind("a", "ok"), Bind("b", "y")); err != nil {
		t.Errorf("valid rebind after ill-typed bind: %v", err)
	} else {
		res.Close()
	}
	if res2, err := prep.Run(ctx, Bind("a", nil), Bind("b", "y")); err != nil {
		t.Fatalf("nil binding should satisfy the bound check: %v", err)
	} else {
		res2.Close()
	}
}

// TestPreparedParseErrors pins the prolog's error surface.
func TestPreparedParseErrors(t *testing.T) {
	e := tinyEngine(t)
	var pe *ParseError
	if _, err := e.Prepare("declare variable $x external; declare variable $x external;\n" +
		`let $d := doc("bib.xml") for $t in $d//title return $t`); !errors.As(err, &pe) {
		t.Errorf("duplicate declaration: got %v, want *ParseError", err)
	}
	if _, err := e.Prepare("declare variable $x := 3;\n" +
		`let $d := doc("bib.xml") for $t in $d//title return $t`); !errors.As(err, &pe) {
		t.Errorf("initialized declaration: got %v, want *ParseError", err)
	}
}

// TestPreparedConcurrentDistinctBindings races ≥12 Runs of one Prepared,
// each with its own binding, and checks each sees exactly its own
// parameter — per-run binding tables never bleed across sessions. CI runs
// this under -race (make race-test).
func TestPreparedConcurrentDistinctBindings(t *testing.T) {
	e := NewEngine()
	var docs strings.Builder
	docs.WriteString("<ns>")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&docs, `<n v="%d"/>`, i)
	}
	docs.WriteString("</ns>")
	if err := e.LoadXMLString("n.xml", docs.String()); err != nil {
		t.Fatal(err)
	}
	prep, err := e.Prepare(`
declare variable $want external;
let $d := doc("n.xml")
for $n in $d//n
where $n/@v = $want
return <hit>{ $n/@v }</hit>`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	const runners = 16
	var wg sync.WaitGroup
	errs := make(chan error, runners)
	for g := 0; g < runners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				res, err := prep.Run(context.Background(), Bind("want", g))
				if err != nil {
					errs <- err
					return
				}
				var sb strings.Builder
				if err := res.WriteXML(&sb); err != nil {
					errs <- err
					return
				}
				res.Close()
				want := fmt.Sprintf("<hit>%d</hit>", g)
				if sb.String() != want {
					errs <- fmt.Errorf("goroutine %d saw %q, want %q", g, sb.String(), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineLoadRacesPrepareAndRun pins the copy-on-write engine core:
// LoadXML, Prepare, the cached RunText path and Runs of an existing
// Prepared all proceed concurrently. Run under -race this is the data-race
// gate for the snapshot scheme (the seed engine mutated an unsynchronized
// map under Compile readers).
func TestEngineLoadRacesPrepareAndRun(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("n.xml", `<ns><n v="1"/><n v="2"/></ns>`); err != nil {
		t.Fatal(err)
	}
	const text = `
declare variable $min external;
let $d := doc("n.xml")
for $n in $d//n
where $n/@v >= $min
return <k>{ $n/@v }</k>`
	prep, err := e.Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Loader: keeps publishing new documents (fresh URIs and overwrites).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			uri := fmt.Sprintf("doc%d.xml", i%4)
			if err := e.LoadXMLString(uri, fmt.Sprintf(`<d i="%d"/>`, i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Preparers: full compilations racing the loader.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.Prepare(text); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Cached convenience path racing generation bumps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := e.Query(`let $d := doc("n.xml") for $n in $d//n return $n`); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Runners: ≥12 concurrent executions of the one Prepared.
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := prep.Run(context.Background(), Bind("min", g%3))
				if err != nil {
					errs <- err
					return
				}
				var sb strings.Builder
				if err := res.WriteXML(&sb); err != nil {
					errs <- err
					return
				}
				res.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCache pins the convenience-path cache: hits on repeated text,
// LRU eviction at the bound, and invalidation when the document set (the
// catalog generation) moves.
func TestPlanCache(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("n.xml", `<ns><n v="1"/></ns>`); err != nil {
		t.Fatal(err)
	}
	const q1 = `let $d := doc("n.xml") for $n in $d//n return <a>{ $n/@v }</a>`
	const q2 = `let $d := doc("n.xml") for $n in $d//n return <b>{ $n/@v }</b>`

	base := e.compiles.Load()
	for i := 0; i < 5; i++ {
		if _, err := e.Query(q1); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.compiles.Load() - base; got != 1 {
		t.Errorf("5 × Query(same text): %d compiles, want 1", got)
	}
	st := e.PlanCacheStats()
	if st.Hits != 4 || st.Misses != 1 {
		t.Errorf("cache stats after repeats: %+v, want 4 hits / 1 miss", st)
	}

	// RunText shares the cache with Query.
	res, err := e.RunText(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if got := e.compiles.Load() - base; got != 1 {
		t.Errorf("RunText after Query recompiled (total %d compiles)", got)
	}

	// Loading a document moves the generation: the next lookup misses and
	// the recompiled plan sees the new document.
	if err := e.LoadXMLString("n.xml", `<ns><n v="1"/><n v="2"/></ns>`); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query(q1)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.compiles.Load() - base; got != 2 {
		t.Errorf("after generation bump: %d compiles, want 2", got)
	}
	if strings.Count(out, "<a>") != 2 {
		t.Errorf("stale plan served after document reload: %q", out)
	}

	// A catalog edit moves the generation too; reading the catalog does
	// not (Catalog() is a cheap getter, so per-request inspection never
	// flushes the cache).
	if _, err := e.Query(q1); err != nil {
		t.Fatal(err)
	}
	preRead := e.compiles.Load()
	_ = e.Catalog().Has("n.xml")
	if _, err := e.Query(q1); err != nil {
		t.Fatal(err)
	}
	if got := e.compiles.Load() - preRead; got != 0 {
		t.Errorf("Catalog() read flushed the plan cache (%d compiles)", got)
	}
	e.EditCatalog(func(cat *schema.Catalog) { cat.Doc("n.xml").Child("ns", "n", 0, -1) })
	if _, err := e.Query(q1); err != nil {
		t.Fatal(err)
	}
	if got := e.compiles.Load() - preRead; got != 1 {
		t.Errorf("EditCatalog did not invalidate the plan cache (%d compiles, want 1)", got)
	}

	// Eviction at the bound: capacity 1 alternating two texts always
	// misses; both texts stay correct. Disable first to drop the q1 entry
	// still cached from above.
	e.SetPlanCacheSize(0)
	e.SetPlanCacheSize(1)
	preEvict := e.compiles.Load()
	for i := 0; i < 3; i++ {
		if _, err := e.Query(q1); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Query(q2); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.compiles.Load() - preEvict; got != 6 {
		t.Errorf("capacity-1 alternation: %d compiles, want 6", got)
	}
	if st := e.PlanCacheStats(); st.Entries != 1 {
		t.Errorf("capacity-1 cache holds %d entries", st.Entries)
	}

	// Disabling drops everything and stops caching.
	e.SetPlanCacheSize(0)
	if st := e.PlanCacheStats(); st.Entries != 0 {
		t.Errorf("disabled cache holds %d entries", st.Entries)
	}
}

// TestRunTextBindings: the cached convenience path supports external
// variables end to end.
func TestRunTextBindings(t *testing.T) {
	e := NewEngine()
	if err := e.LoadXMLString("n.xml", `<ns><n v="1"/><n v="2"/><n v="3"/></ns>`); err != nil {
		t.Fatal(err)
	}
	const text = `
declare variable $min external;
let $d := doc("n.xml")
for $n in $d//n
where $n/@v >= $min
return <k>{ $n/@v }</k>`
	base := e.compiles.Load()
	for min, want := range map[int]int{1: 3, 3: 1} {
		res, err := e.RunText(context.Background(), text, Bind("min", min))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteXML(&sb); err != nil {
			t.Fatal(err)
		}
		res.Close()
		if got := strings.Count(sb.String(), "<k>"); got != want {
			t.Errorf("min=%d: %d results, want %d", min, got, want)
		}
	}
	if got := e.compiles.Load() - base; got != 1 {
		t.Errorf("RunText with different bindings recompiled: %d compiles, want 1", got)
	}
}
